#include "gpu/gpu_rbc.hpp"

#include <cassert>

namespace rbc::gpu {

GpuRbcOneShot::GpuRbcOneShot(simt::Device& device,
                             const RbcOneShotIndex<Euclidean>& host)
    : device_(&device), s_(host.points_per_rep()) {
  const index_t nr = host.num_reps();
  const index_t d = host.dim();

  // Rebuild the device-side matrices from the host index through its public
  // export API (list j of representative r occupies packed row r*s + j).
  Matrix<float> reps_host(nr, d);
  Matrix<float> packed_host(nr * s_, d);
  std::vector<index_t> ids_host(static_cast<std::size_t>(nr) * s_);

  for (index_t r = 0; r < nr; ++r) {
    const auto ids = host.list_ids(r);
    for (index_t j = 0; j < s_; ++j)
      ids_host[static_cast<std::size_t>(r) * s_ + j] = ids[j];
  }
  host.export_rows(reps_host, packed_host);

  reps_ = upload_matrix(device, reps_host);
  packed_ = upload_matrix(device, packed_host);
  packed_ids_ = simt::DeviceBuffer<index_t>(device, ids_host.size());
  packed_ids_.upload(ids_host);
}

KnnResult GpuRbcOneShot::search(const GpuMatrix& Q, index_t k,
                                std::uint32_t threads_per_block) const {
  assert(k >= 1 && k <= kMaxK);
  const index_t nq = Q.rows;
  simt::Device& device = *device_;

  // Kernel 1: BF(Q, R) -> nearest representative per query.
  simt::DeviceBuffer<float> rep_d(device, nq);
  simt::DeviceBuffer<index_t> rep_i(device, nq);
  {
    float* out_d = rep_d.data();
    index_t* out_i = rep_i.data();
    const GpuMatrix* q_mat = &Q;
    const GpuMatrix* r_mat = &reps_;
    device.launch({nq, 1, 1}, {threads_per_block, 1, 1},
                  [=](simt::Block& blk) {
                    const index_t qi = blk.block_idx.x;
                    detail::block_knn_scan(blk, q_mat->row(qi), *r_mat, 0,
                                           r_mat->rows, nullptr, 1,
                                           out_d + qi, out_i + qi);
                  });
  }

  // Kernel 2: BF(q, X[L_r]) over each query's chosen list.
  simt::DeviceBuffer<float> out_d(device, static_cast<std::size_t>(nq) * k);
  simt::DeviceBuffer<index_t> out_i(device, static_cast<std::size_t>(nq) * k);
  {
    const index_t s = s_;
    float* od = out_d.data();
    index_t* oi = out_i.data();
    const index_t* rep_assignment = rep_i.data();
    const index_t* ids = packed_ids_.data();
    const GpuMatrix* q_mat = &Q;
    const GpuMatrix* p_mat = &packed_;
    device.launch({nq, 1, 1}, {threads_per_block, 1, 1},
                  [=](simt::Block& blk) {
                    const index_t qi = blk.block_idx.x;
                    const index_t r = rep_assignment[qi];
                    detail::block_knn_scan(
                        blk, q_mat->row(qi), *p_mat, r * s, r * s + s, ids, k,
                        od + static_cast<std::size_t>(qi) * k,
                        oi + static_cast<std::size_t>(qi) * k);
                  });
  }

  KnnResult result(nq, k);
  std::vector<float> host_d(static_cast<std::size_t>(nq) * k);
  std::vector<index_t> host_i(static_cast<std::size_t>(nq) * k);
  out_d.download(host_d);
  out_i.download(host_i);
  for (index_t i = 0; i < nq; ++i)
    for (index_t j = 0; j < k; ++j) {
      result.dists.at(i, j) = host_d[static_cast<std::size_t>(i) * k + j];
      result.ids.at(i, j) = host_i[static_cast<std::size_t>(i) * k + j];
    }
  return result;
}

}  // namespace rbc::gpu
