// RBC one-shot search on the SIMT substrate (paper §7.3).
//
// "We show that our RBC one-shot algorithm provides a substantial speedup
//  over the already-fast brute force search on a GPU."
//
// The index is built on the host (build is offline) and uploaded once; each
// query batch then runs as two kernels, exactly the two BF calls of §5.1:
//   kernel 1: BF(Q, R)      — one block per query over the representatives;
//   kernel 2: BF(q, X[L_r]) — one block per query over its chosen list.
#pragma once

#include "gpu/gpu_bf.hpp"
#include "rbc/rbc_oneshot.hpp"

namespace rbc::gpu {

/// Device-resident one-shot RBC index.
class GpuRbcOneShot {
 public:
  /// Uploads a host-built index. The host index can be discarded afterwards.
  GpuRbcOneShot(simt::Device& device, const RbcOneShotIndex<Euclidean>& host);

  /// k-NN search for a device-resident query batch. Runs both kernels on the
  /// device; only the final (nq x k) result is downloaded. k <= kMaxK.
  KnnResult search(const GpuMatrix& Q, index_t k,
                   std::uint32_t threads_per_block = 64) const;

  index_t num_reps() const { return reps_.rows; }
  index_t points_per_rep() const { return s_; }
  index_t dim() const { return reps_.cols; }

 private:
  simt::Device* device_;
  GpuMatrix reps_;                        // nr x d
  GpuMatrix packed_;                      // (nr * s) x d
  simt::DeviceBuffer<index_t> packed_ids_;  // original ids per packed row
  index_t s_ = 0;
};

}  // namespace rbc::gpu
