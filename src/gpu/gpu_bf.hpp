// GPU-style brute-force k-NN on the SIMT substrate (paper §7.3's baseline:
// "GPUs have impressive brute force search performance [14]").
//
// Kernel shape mirrors the canonical CUDA implementation: one thread block
// per query; threads stride over the database keeping private sorted top-k
// lists in shared memory; a log2(T)-step tree reduction merges them; thread
// 0 writes the result. No divergent branching beyond the uniform tail
// handling — the access pattern the paper's argument is about.
#pragma once

#include "bruteforce/bf.hpp"
#include "common/matrix.hpp"
#include "simt/device.hpp"

namespace rbc::gpu {

/// Maximum k supported by the device kernels (private per-thread lists live
/// on the simulated SM's shared memory; real CUDA RBC code has the same
/// kind of constant).
inline constexpr index_t kMaxK = 32;

/// A row-major matrix resident on the device.
struct GpuMatrix {
  simt::DeviceBuffer<float> data;
  index_t rows = 0;
  index_t cols = 0;
  index_t stride = 0;

  const float* row(index_t i) const {
    return data.data() + static_cast<std::size_t>(i) * stride;
  }
};

/// Uploads a host matrix (padded layout preserved).
GpuMatrix upload_matrix(simt::Device& device, const Matrix<float>& m);

/// Brute-force k-NN of every query in Q against X, entirely on the device;
/// results are downloaded into the returned KnnResult. k <= kMaxK.
/// `threads_per_block` is the block width (power of two).
KnnResult gpu_bf_knn(simt::Device& device, const GpuMatrix& Q,
                     const GpuMatrix& X, index_t k,
                     std::uint32_t threads_per_block = 64);

namespace detail {

/// Device-side scan of rows [begin, end) of `mat` (optionally indirected
/// through `ids`) for one query; shared by the BF and RBC one-shot kernels.
/// Runs inside a kernel: `blk` supplies threads and shared memory; results
/// for this query are written to out_dists/out_ids (k entries, ascending).
void block_knn_scan(simt::Block& blk, const float* q, const GpuMatrix& mat,
                    index_t begin, index_t end, const index_t* ids, index_t k,
                    float* out_dists, index_t* out_ids);

}  // namespace detail

}  // namespace rbc::gpu
