#include "gpu/gpu_bf.hpp"

#include <cassert>
#include <cmath>

#include "common/counters.hpp"
#include "distance/kernels.hpp"

namespace rbc::gpu {

GpuMatrix upload_matrix(simt::Device& device, const Matrix<float>& m) {
  GpuMatrix g;
  g.rows = m.rows();
  g.cols = m.cols();
  g.stride = m.stride();
  g.data = simt::DeviceBuffer<float>(
      device, static_cast<std::size_t>(m.rows()) * m.stride());
  g.data.upload({m.data(), static_cast<std::size_t>(m.rows()) * m.stride()});
  return g;
}

namespace detail {

namespace {

/// Insert (d, id) into a sorted-ascending k-slot list (worst entry drops).
/// The (distance, id) order matches TopK so device results are bit-equal to
/// the host path.
inline void sorted_insert(float* dists, index_t* ids, index_t k, float d,
                          index_t id) {
  const index_t last = k - 1;
  if (d > dists[last] || (d == dists[last] && id >= ids[last])) return;
  index_t pos = last;
  while (pos > 0 &&
         (d < dists[pos - 1] || (d == dists[pos - 1] && id < ids[pos - 1]))) {
    dists[pos] = dists[pos - 1];
    ids[pos] = ids[pos - 1];
    --pos;
  }
  dists[pos] = d;
  ids[pos] = id;
}

/// Merge slot list `src` into slot list `dst` (both sorted, k entries).
inline void merge_lists(float* dst_d, index_t* dst_i, const float* src_d,
                        const index_t* src_i, index_t k) {
  for (index_t j = 0; j < k; ++j) {
    if (src_i[j] == kInvalidIndex) break;
    sorted_insert(dst_d, dst_i, k, src_d[j], src_i[j]);
  }
}

}  // namespace

void block_knn_scan(simt::Block& blk, const float* q, const GpuMatrix& mat,
                    index_t begin, index_t end, const index_t* ids, index_t k,
                    float* out_dists, index_t* out_ids) {
  const std::uint32_t nt = blk.num_threads();
  assert((nt & (nt - 1)) == 0 && "threads_per_block must be a power of two");
  assert(k <= kMaxK);

  // Shared memory: one k-slot (dist, id) list per thread.
  auto slot_d = blk.shared<float>(static_cast<std::size_t>(nt) * k);
  auto slot_i = blk.shared<index_t>(static_cast<std::size_t>(nt) * k);

  // Phase 1: strided scan; thread t handles rows begin+t, begin+t+nt, ...
  // (the coalesced access pattern of the CUDA original).
  blk.threads([&](std::uint32_t t) {
    float* my_d = slot_d.data() + static_cast<std::size_t>(t) * k;
    index_t* my_i = slot_i.data() + static_cast<std::size_t>(t) * k;
    for (index_t j = 0; j < k; ++j) {
      my_d[j] = kInfDist;
      my_i[j] = kInvalidIndex;
    }
    for (index_t row = begin + t; row < end; row += nt) {
      const float dist =
          std::sqrt(kernels::sq_l2(q, mat.row(row), mat.cols));
      const index_t id = ids == nullptr ? row : ids[row];
      sorted_insert(my_d, my_i, k, dist, id);
    }
  });
  if (end > begin) counters::add_dist_evals(end - begin);

  // Phase 2: inverted-binary-tree reduction (paper §3: "the standard
  // parallel-reduce paradigm where comparisons are made according to an
  // inverted binary tree"). Each iteration is one barrier-separated phase.
  for (std::uint32_t stride = nt / 2; stride > 0; stride /= 2) {
    blk.threads([&](std::uint32_t t) {
      if (t >= stride) return;
      float* dst_d = slot_d.data() + static_cast<std::size_t>(t) * k;
      index_t* dst_i = slot_i.data() + static_cast<std::size_t>(t) * k;
      const float* src_d =
          slot_d.data() + static_cast<std::size_t>(t + stride) * k;
      const index_t* src_i =
          slot_i.data() + static_cast<std::size_t>(t + stride) * k;
      merge_lists(dst_d, dst_i, src_d, src_i, k);
    });
  }

  // Phase 3: thread 0 publishes the block result.
  blk.threads([&](std::uint32_t t) {
    if (t != 0) return;
    for (index_t j = 0; j < k; ++j) {
      out_dists[j] = slot_d[j];
      out_ids[j] = slot_i[j];
    }
  });
}

}  // namespace detail

KnnResult gpu_bf_knn(simt::Device& device, const GpuMatrix& Q,
                     const GpuMatrix& X, index_t k,
                     std::uint32_t threads_per_block) {
  assert(k >= 1 && k <= kMaxK);
  const index_t nq = Q.rows;

  simt::DeviceBuffer<float> out_d(device, static_cast<std::size_t>(nq) * k);
  simt::DeviceBuffer<index_t> out_i(device, static_cast<std::size_t>(nq) * k);

  float* out_d_ptr = out_d.data();
  index_t* out_i_ptr = out_i.data();
  const GpuMatrix* q_mat = &Q;
  const GpuMatrix* x_mat = &X;

  // One block per query.
  device.launch({nq, 1, 1}, {threads_per_block, 1, 1}, [=](simt::Block& blk) {
    const index_t qi = blk.block_idx.x;
    detail::block_knn_scan(blk, q_mat->row(qi), *x_mat, 0, x_mat->rows,
                           nullptr, k,
                           out_d_ptr + static_cast<std::size_t>(qi) * k,
                           out_i_ptr + static_cast<std::size_t>(qi) * k);
  });

  // Download results (d2h, metered).
  KnnResult result(nq, k);
  std::vector<float> host_d(static_cast<std::size_t>(nq) * k);
  std::vector<index_t> host_i(static_cast<std::size_t>(nq) * k);
  out_d.download(host_d);
  out_i.download(host_i);
  for (index_t i = 0; i < nq; ++i)
    for (index_t j = 0; j < k; ++j) {
      result.dists.at(i, j) = host_d[static_cast<std::size_t>(i) * k + j];
      result.ids.at(i, j) = host_i[static_cast<std::size_t>(i) * k + j];
    }
  return result;
}

}  // namespace rbc::gpu
