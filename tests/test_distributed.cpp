// Distributed RBC (paper §8): exactness under sharding, load balance,
// communication accounting, and the representative-sharding vs
// random-sharding contrast.
#include <gtest/gtest.h>

#include <tuple>

#include "dist/distributed_rbc.hpp"
#include "test_util.hpp"

namespace rbc::dist {
namespace {

class DistExactness
    : public ::testing::TestWithParam<std::tuple<index_t, int>> {};

TEST_P(DistExactness, EqualsBruteForceForEveryWorkerCount) {
  const auto [workers, sharding_int] = GetParam();
  const auto sharding = static_cast<Sharding>(sharding_int);
  const Matrix<float> X = testutil::clustered_matrix(1'500, 10, 6, 1);
  const Matrix<float> Q = testutil::random_matrix(40, 10, 2, -6.0f, 6.0f);

  DistributedRbc cluster;
  cluster.build(X, workers, {.num_reps = 38, .seed = 3}, sharding);
  ASSERT_EQ(cluster.num_workers(), workers);

  const KnnResult expected = testutil::naive_knn(Q, X, 4);
  const KnnResult actual = cluster.search(Q, 4);
  EXPECT_TRUE(testutil::knn_equal(expected, actual));
}

INSTANTIATE_TEST_SUITE_P(
    WorkersAndPolicies, DistExactness,
    ::testing::Combine(::testing::Values<index_t>(1, 2, 3, 8, 16),
                       ::testing::Values(0, 1)),
    [](const auto& info) {
      return std::string("w") + std::to_string(std::get<0>(info.param)) +
             (std::get<1>(info.param) == 0 ? "_byrep" : "_random");
    });

TEST(Distributed, DuplicateHeavyDataStaysExact) {
  const Matrix<float> base = testutil::random_matrix(200, 6, 4);
  const Matrix<float> X = testutil::with_duplicates(base, 200);
  const Matrix<float> Q = testutil::random_matrix(20, 6, 5);
  DistributedRbc cluster;
  cluster.build(X, 4, {.num_reps = 16, .seed = 6});
  EXPECT_TRUE(testutil::knn_equal(testutil::naive_knn(Q, X, 5),
                                  cluster.search(Q, 5)));
}

TEST(Distributed, EveryPointStoredExactlyOnceUnderRepSharding) {
  const Matrix<float> X = testutil::clustered_matrix(800, 8, 5, 7);
  DistributedRbc cluster;
  cluster.build(X, 5, {.num_reps = 25, .seed = 8});
  std::uint64_t total = 0;
  for (index_t w = 0; w < cluster.num_workers(); ++w)
    total += cluster.worker_points(w);
  EXPECT_EQ(total, X.rows());
}

TEST(Distributed, GreedyBalanceKeepsWorkersWithinFactor) {
  const Matrix<float> X = testutil::clustered_matrix(4'000, 8, 12, 9);
  DistributedRbc cluster;
  cluster.build(X, 4, {.seed = 10});
  index_t min_pts = kInvalidIndex, max_pts = 0;
  for (index_t w = 0; w < 4; ++w) {
    min_pts = std::min(min_pts, cluster.worker_points(w));
    max_pts = std::max(max_pts, cluster.worker_points(w));
  }
  // Greedy largest-first bin packing: max/min stays small unless one list
  // dominates the whole database.
  EXPECT_LT(max_pts, 3u * min_pts)
      << "load imbalance: " << min_pts << " vs " << max_pts;
}

TEST(Distributed, RepShardingContactsFewerWorkersThanRandom) {
  const auto [X, Q] =
      testutil::split_rows(testutil::clustered_matrix(3'050, 10, 8, 11),
                           3'000);
  const index_t workers = 8;

  DistStats by_rep, random;
  {
    DistributedRbc cluster;
    cluster.build(X, workers, {.seed = 12}, Sharding::kByRepresentative);
    (void)cluster.search(Q, 1, &by_rep);
  }
  {
    DistributedRbc cluster;
    cluster.build(X, workers, {.seed = 12}, Sharding::kRandomPoints);
    (void)cluster.search(Q, 1, &random);
  }
  // Random point placement scatters every list over all workers, so nearly
  // all 8 must be contacted; representative sharding touches only the
  // workers owning surviving lists.
  EXPECT_GT(random.workers_contacted_per_query(), 6.0);
  EXPECT_LT(by_rep.workers_contacted_per_query(),
            0.8 * random.workers_contacted_per_query());
}

TEST(Distributed, NetworkMetersQueriesAndResponses) {
  const Matrix<float> X = testutil::clustered_matrix(600, 8, 4, 13);
  const Matrix<float> Q = testutil::random_matrix(10, 8, 14, -6.0f, 6.0f);
  DistributedRbc cluster;
  cluster.build(X, 3, {.num_reps = 18, .seed = 15});

  const TrafficStats after_build = cluster.network().total();
  EXPECT_GT(after_build.bytes, 600ull * 8 * sizeof(float))
      << "ingest must ship the whole database";

  DistStats stats;
  (void)cluster.search(Q, 2, &stats);
  const TrafficStats after_search = cluster.network().total();
  // Each contacted worker costs one request and one response message.
  EXPECT_EQ(after_search.messages - after_build.messages,
            2 * stats.workers_contacted);
  EXPECT_GT(after_search.bytes, after_build.bytes);
}

TEST(Distributed, SingleWorkerMatchesSingleNodeWork) {
  // With one worker the distributed search degenerates to the single-node
  // exact search (same pruning, same scans).
  const auto [X, Q] =
      testutil::split_rows(testutil::clustered_matrix(2'030, 9, 6, 16),
                           2'000);
  DistributedRbc cluster;
  cluster.build(X, 1, {.seed = 17});
  DistStats stats;
  const KnnResult dist_result = cluster.search(Q, 1, &stats);

  RbcExactIndex<> single;
  single.build(X, {.seed = 17});
  // Per-query reference (search_one): the schedule the workers actually
  // run. Batch search() would take the query-tile blocked path for this
  // many queries, whose frozen-bound windows count work differently.
  SearchStats single_stats;
  KnnResult single_result(Q.rows(), 1);
  {
    RbcExactIndex<>::Scratch scratch;
    TopK top(1);
    for (index_t qi = 0; qi < Q.rows(); ++qi) {
      top.reset();
      single.search_one(Q.row(qi), 1, top, scratch, &single_stats);
      top.extract_sorted(single_result.dists.row(qi),
                         single_result.ids.row(qi));
    }
  }

  EXPECT_TRUE(testutil::knn_equal(dist_result, single_result));
  EXPECT_EQ(stats.rep_dist_evals, single_stats.rep_dist_evals);
  // The worker cannot see the coordinator's dynamically-tightening bound,
  // so it may scan somewhat more than the single-node search — but never
  // an order of magnitude more.
  EXPECT_GE(stats.list_dist_evals, single_stats.list_dist_evals);
  EXPECT_LT(stats.list_dist_evals, 5 * single_stats.list_dist_evals + 100);
}

TEST(Distributed, WorkerWorkMetersSumToListEvals) {
  const Matrix<float> X = testutil::clustered_matrix(1'000, 8, 5, 18);
  const Matrix<float> Q = testutil::random_matrix(25, 8, 19, -6.0f, 6.0f);
  DistributedRbc cluster;
  cluster.build(X, 4, {.num_reps = 30, .seed = 20});
  DistStats stats;
  (void)cluster.search(Q, 1, &stats);
  std::uint64_t sum = 0;
  for (index_t w = 0; w < 4; ++w) sum += cluster.worker_list_evals(w);
  EXPECT_EQ(sum, stats.list_dist_evals);
}

TEST(Distributed, MoreWorkersThanReps) {
  const Matrix<float> X = testutil::random_matrix(100, 5, 21);
  const Matrix<float> Q = testutil::random_matrix(10, 5, 22);
  DistributedRbc cluster;
  cluster.build(X, 32, {.num_reps = 6, .seed = 23});  // most workers empty
  EXPECT_TRUE(testutil::knn_equal(testutil::naive_knn(Q, X, 3),
                                  cluster.search(Q, 3)));
}

}  // namespace
}  // namespace rbc::dist
