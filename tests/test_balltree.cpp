#include <gtest/gtest.h>

#include <tuple>

#include "baselines/balltree.hpp"
#include "test_util.hpp"

namespace rbc {
namespace {

KnnResult balltree_batch(const BallTree<>& tree, const Matrix<float>& Q,
                         index_t k) {
  KnnResult result(Q.rows(), k);
  for (index_t qi = 0; qi < Q.rows(); ++qi) {
    TopK top(k);
    tree.knn(Q.row(qi), k, top);
    top.extract_sorted(result.dists.row(qi), result.ids.row(qi));
  }
  return result;
}

class BallTreeProperty
    : public ::testing::TestWithParam<std::tuple<index_t, index_t, index_t>> {
};

TEST_P(BallTreeProperty, KnnEqualsBruteForce) {
  const auto [n, d, k] = GetParam();
  const Matrix<float> X = testutil::clustered_matrix(n, d, 5, n + 7 * d);
  const Matrix<float> Q = testutil::random_matrix(25, d, n, -6.0f, 6.0f);
  BallTree<> tree;
  tree.build(X);
  ASSERT_TRUE(tree.check_invariants());
  EXPECT_TRUE(testutil::knn_equal(testutil::naive_knn(Q, X, k),
                                  balltree_batch(tree, Q, k)));
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, BallTreeProperty,
    ::testing::Combine(::testing::Values<index_t>(8, 120, 900),
                       ::testing::Values<index_t>(2, 9, 21),
                       ::testing::Values<index_t>(1, 6)),
    [](const auto& info) {
      return "n" + std::to_string(std::get<0>(info.param)) + "_d" +
             std::to_string(std::get<1>(info.param)) + "_k" +
             std::to_string(std::get<2>(info.param));
    });

TEST(BallTree, DuplicateHeavyData) {
  const Matrix<float> base = testutil::random_matrix(40, 5, 1);
  const Matrix<float> X = testutil::with_duplicates(base, 160);
  const Matrix<float> Q = testutil::random_matrix(15, 5, 2);
  BallTree<> tree;
  tree.build(X);
  ASSERT_TRUE(tree.check_invariants());
  EXPECT_TRUE(testutil::knn_equal(testutil::naive_knn(Q, X, 7),
                                  balltree_batch(tree, Q, 7)));
}

TEST(BallTree, AllPointsIdentical) {
  Matrix<float> X(64, 4);
  for (index_t i = 0; i < X.rows(); ++i)
    for (index_t j = 0; j < X.cols(); ++j) X.at(i, j) = 2.0f;
  BallTree<> tree;
  tree.build(X, /*leaf_size=*/4);
  Matrix<float> q(1, 4);
  TopK top(3);
  tree.knn(q.row(0), 3, top);
  std::vector<dist_t> d(3);
  std::vector<index_t> ids(3);
  top.extract_sorted(d.data(), ids.data());
  EXPECT_EQ(ids, (std::vector<index_t>{0, 1, 2}));  // tie order by id
}

TEST(BallTree, L1Metric) {
  const Matrix<float> X = testutil::clustered_matrix(300, 8, 4, 3);
  const Matrix<float> Q = testutil::random_matrix(15, 8, 4, -6.0f, 6.0f);
  BallTree<L1> tree;
  tree.build(X, 16, L1{});
  ASSERT_TRUE(tree.check_invariants());
  const KnnResult expected = testutil::naive_knn(Q, X, 3, L1{});
  KnnResult actual(Q.rows(), 3);
  for (index_t qi = 0; qi < Q.rows(); ++qi) {
    TopK top(3);
    tree.knn(Q.row(qi), 3, top);
    top.extract_sorted(actual.dists.row(qi), actual.ids.row(qi));
  }
  EXPECT_TRUE(testutil::knn_equal(expected, actual));
}

TEST(BallTree, PrunesWorkOnClusteredData) {
  const index_t n = 4'000;
  const Matrix<float> X = testutil::clustered_matrix(n, 8, 10, 5);
  BallTree<> tree;
  tree.build(X);
  const Matrix<float> Q = testutil::random_matrix(20, 8, 6, -6.0f, 6.0f);
  counters::Scope scope;
  for (index_t qi = 0; qi < Q.rows(); ++qi) {
    TopK top(1);
    tree.knn(Q.row(qi), 1, top);
  }
  EXPECT_LT(scope.delta(), 20ull * n / 2);
}

TEST(BallTree, LeafSizeOneStillCorrect) {
  const Matrix<float> X = testutil::clustered_matrix(400, 6, 4, 7);
  const Matrix<float> Q = testutil::random_matrix(15, 6, 8, -6.0f, 6.0f);
  BallTree<> tree;
  tree.build(X, /*leaf_size=*/1);
  EXPECT_TRUE(testutil::knn_equal(testutil::naive_knn(Q, X, 2),
                                  balltree_batch(tree, Q, 2)));
}

TEST(BallTree, SinglePointAndEmpty) {
  BallTree<> empty_tree;
  Matrix<float> empty(0, 3);
  empty_tree.build(empty);
  Matrix<float> q(1, 3);
  TopK top(1);
  empty_tree.knn(q.row(0), 1, top);
  EXPECT_EQ(top.size(), 0u);

  Matrix<float> one(1, 3);
  one.at(0, 1) = 3.0f;
  BallTree<> tree;
  tree.build(one);
  const auto [d, id] = tree.nn(q.row(0));
  EXPECT_EQ(id, 0u);
  EXPECT_FLOAT_EQ(d, 3.0f);
}

}  // namespace
}  // namespace rbc
