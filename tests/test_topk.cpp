#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "bruteforce/topk.hpp"
#include "common/rng.hpp"

namespace rbc {
namespace {

std::pair<std::vector<dist_t>, std::vector<index_t>> extract(const TopK& top) {
  std::vector<dist_t> d(top.k());
  std::vector<index_t> i(top.k());
  top.extract_sorted(d.data(), i.data());
  return {d, i};
}

TEST(TopK, KeepsKSmallest) {
  TopK top(3);
  for (index_t i = 0; i < 10; ++i)
    top.push(static_cast<dist_t>(10 - i), i);  // dists 10, 9, ..., 1
  const auto [d, ids] = extract(top);
  EXPECT_EQ(d[0], 1.0f);
  EXPECT_EQ(d[1], 2.0f);
  EXPECT_EQ(d[2], 3.0f);
  EXPECT_EQ(ids[0], 9u);
  EXPECT_EQ(ids[1], 8u);
  EXPECT_EQ(ids[2], 7u);
}

TEST(TopK, WorstIsInfinityUntilFull) {
  TopK top(3);
  EXPECT_EQ(top.worst(), kInfDist);
  top.push(1.0f, 0);
  top.push(2.0f, 1);
  EXPECT_EQ(top.worst(), kInfDist);
  top.push(3.0f, 2);
  EXPECT_EQ(top.worst(), 3.0f);
  top.push(0.5f, 3);
  EXPECT_EQ(top.worst(), 2.0f);
}

TEST(TopK, TiesResolveToSmallerId) {
  TopK top(2);
  top.push(1.0f, 5);
  top.push(1.0f, 3);
  top.push(1.0f, 9);
  top.push(1.0f, 1);
  const auto [d, ids] = extract(top);
  EXPECT_EQ(ids[0], 1u);
  EXPECT_EQ(ids[1], 3u);
}

TEST(TopK, PushOrderDoesNotMatter) {
  Rng rng(3);
  std::vector<std::pair<dist_t, index_t>> items;
  for (index_t i = 0; i < 200; ++i)
    items.emplace_back(rng.uniform_float(0.0f, 5.0f), i);

  TopK forward(7), backward(7);
  for (const auto& [d, id] : items) forward.push(d, id);
  for (auto it = items.rbegin(); it != items.rend(); ++it)
    backward.push(it->first, it->second);

  EXPECT_EQ(extract(forward), extract(backward));
}

TEST(TopK, MatchesFullSortReference) {
  Rng rng(17);
  for (int trial = 0; trial < 50; ++trial) {
    const index_t n = 1 + rng.uniform_index(100);
    const index_t k = 1 + rng.uniform_index(12);
    std::vector<std::pair<dist_t, index_t>> items;
    TopK top(k);
    for (index_t i = 0; i < n; ++i) {
      // Coarse quantization to force plenty of ties.
      const auto d = static_cast<dist_t>(rng.uniform_index(8));
      items.emplace_back(d, i);
      top.push(d, i);
    }
    std::sort(items.begin(), items.end());
    const auto [d, ids] = extract(top);
    for (index_t j = 0; j < k; ++j) {
      if (j < n) {
        EXPECT_EQ(d[j], items[j].first);
        EXPECT_EQ(ids[j], items[j].second);
      } else {
        EXPECT_EQ(d[j], kInfDist);
        EXPECT_EQ(ids[j], kInvalidIndex);
      }
    }
  }
}

TEST(TopK, PaddingWhenUnderfilled) {
  TopK top(5);
  top.push(1.0f, 10);
  top.push(0.5f, 20);
  const auto [d, ids] = extract(top);
  EXPECT_EQ(d[0], 0.5f);
  EXPECT_EQ(ids[0], 20u);
  EXPECT_EQ(d[1], 1.0f);
  EXPECT_EQ(ids[1], 10u);
  for (int j = 2; j < 5; ++j) {
    EXPECT_EQ(d[j], kInfDist);
    EXPECT_EQ(ids[j], kInvalidIndex);
  }
}

TEST(TopK, MergePreservesGlobalOrder) {
  TopK a(4), b(4);
  a.push(1.0f, 1);
  a.push(3.0f, 3);
  a.push(5.0f, 5);
  b.push(2.0f, 2);
  b.push(4.0f, 4);
  b.push(6.0f, 6);
  a.merge_from(b);
  const auto [d, ids] = extract(a);
  EXPECT_EQ(ids, (std::vector<index_t>{1, 2, 3, 4}));
  EXPECT_EQ(d, (std::vector<dist_t>{1.0f, 2.0f, 3.0f, 4.0f}));
}

TEST(TopK, ResetKeepsCapacity) {
  TopK top(3);
  top.push(1.0f, 0);
  top.push(2.0f, 1);
  top.reset();
  EXPECT_EQ(top.size(), 0u);
  EXPECT_EQ(top.worst(), kInfDist);
  top.push(9.0f, 7);
  const auto [d, ids] = extract(top);
  EXPECT_EQ(ids[0], 7u);
}

TEST(TopK, PushReturnsWhetherKept) {
  TopK top(2);
  EXPECT_TRUE(top.push(5.0f, 0));
  EXPECT_TRUE(top.push(4.0f, 1));
  EXPECT_TRUE(top.push(3.0f, 2));    // evicts 5.0
  EXPECT_FALSE(top.push(6.0f, 3));   // worse than worst
  EXPECT_FALSE(top.push(4.0f, 99));  // ties with worst, larger id: rejected
  EXPECT_TRUE(top.push(4.0f, 0));    // ties with worst, smaller id: kept
}

TEST(TopK, KOne) {
  TopK top(1);
  top.push(2.0f, 5);
  top.push(1.0f, 9);
  top.push(1.5f, 2);
  const auto [d, ids] = extract(top);
  EXPECT_EQ(d[0], 1.0f);
  EXPECT_EQ(ids[0], 9u);
}

}  // namespace
}  // namespace rbc
