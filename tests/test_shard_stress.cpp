// Stress/concurrency: a ShardedIndex serving many client threads through
// the batching SearchService dispatcher while another thread reads stats
// and index info. Every answer must match the precomputed reference —
// coalescing, fan-out, and merge must stay correct under contention. Runs
// under CTest with a TIMEOUT (see CMakeLists.txt) so a deadlock in the
// dispatcher/worker/fan-out stack fails the suite instead of hanging it.
#include <gtest/gtest.h>

#include <atomic>
#include <future>
#include <thread>
#include <vector>

#include "api/api.hpp"
#include "serve/service.hpp"
#include "test_util.hpp"

namespace rbc {
namespace {

TEST(ShardStress, ManyClientsThroughTheServeDispatcher) {
  const auto [X, Q] =
      testutil::split_rows(testutil::clustered_matrix(6'200, 16, 8, 41),
                           6'000);
  const index_t k = 5;

  auto index = make_index("sharded:rbc-exact",
                          {.rbc = {.seed = 42}, .num_shards = 4});
  index->build(X);
  const KnnResult reference = index->knn_search({.queries = &Q, .k = k}).knn;

  serve::SearchService service(std::move(index),
                               {.max_batch = 64, .workers = 2});

  constexpr int kClients = 8, kQueriesPerClient = 250;
  std::atomic<int> mismatches{0};
  std::atomic<bool> done{false};

  // Stats reader: hammers the service counters and the (now service-owned)
  // sharded index's info() while searches are in flight.
  std::thread reader([&] {
    std::uint64_t snapshots = 0;
    while (!done.load(std::memory_order_relaxed)) {
      const serve::ServiceStats stats = service.stats();
      const IndexInfo info = service.index().info();
      if (info.shards != 4 || info.size != 6'000) mismatches.fetch_add(1);
      (void)stats;
      ++snapshots;
      std::this_thread::yield();
    }
    EXPECT_GT(snapshots, 0u);
  });

  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int c = 0; c < kClients; ++c)
    clients.emplace_back([&, c] {
      // Each client pipelines single-query submissions over its slice of
      // the query pool, plus a block submission every 50 queries so both
      // submit paths hit the dispatcher concurrently.
      std::vector<std::pair<index_t, std::future<serve::QueryResult>>>
          singles;
      std::vector<std::future<KnnResult>> blocks;
      for (int i = 0; i < kQueriesPerClient; ++i) {
        const index_t qi =
            static_cast<index_t>((c * 37 + i * 11) % Q.rows());
        singles.emplace_back(
            qi, service.submit({Q.row(qi), Q.cols()}, k));
        if (i % 50 == 0) blocks.push_back(service.submit_batch(Q, k));
      }
      for (auto& [qi, future] : singles) {
        const serve::QueryResult result = future.get();
        for (index_t j = 0; j < k; ++j)
          if (result.ids[j] != reference.ids.at(qi, j) ||
              result.dists[j] != reference.dists.at(qi, j)) {
            mismatches.fetch_add(1);
            break;
          }
      }
      for (std::future<KnnResult>& future : blocks)
        if (!testutil::knn_equal(reference, future.get()))
          mismatches.fetch_add(1);
    });

  for (std::thread& client : clients) client.join();
  done.store(true);
  reader.join();
  service.drain();

  EXPECT_EQ(mismatches.load(), 0)
      << "concurrent sharded search returned wrong answers";
  const serve::ServiceStats stats = service.stats();
  EXPECT_GE(stats.completed,
            static_cast<std::uint64_t>(kClients) * kQueriesPerClient);
  EXPECT_EQ(stats.failed, 0u);
  EXPECT_GT(stats.batches, 0u);
}

}  // namespace
}  // namespace rbc
