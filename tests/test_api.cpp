// The unified index API: factory registry, type-erased search parity with
// the concrete classes, request validation, and save -> load_index -> search
// round-trips on the unified serialization path — for every registered
// backend.
#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>

#include "api/api.hpp"
#include "baselines/balltree.hpp"
#include "baselines/covertree.hpp"
#include "baselines/kdtree.hpp"
#include "gpu/gpu_bf.hpp"
#include "rbc/rbc.hpp"
#include "test_util.hpp"

namespace rbc {
namespace {

/// The six CPU backends the acceptance bar names: each must build, answer
/// through the unified SearchRequest API, and round-trip through
/// rbc::load_index. The exact five must equal brute force, ties included.
const char* const kCpuBackends[] = {"bruteforce", "rbc-exact", "rbc-oneshot",
                                    "kdtree",     "balltree",  "covertree"};

TEST(ApiRegistry, AllBuiltinBackendsAreRegistered) {
  const std::vector<std::string> names = registered_backends();
  for (const char* required :
       {"bruteforce", "rbc-exact", "rbc-oneshot", "kdtree", "balltree",
        "covertree", "gpu-bf", "gpu-oneshot"}) {
    EXPECT_NE(std::find(names.begin(), names.end(), required), names.end())
        << "missing backend: " << required;
  }
}

TEST(ApiRegistry, UnknownNameThrowsWithKnownNamesListed) {
  try {
    (void)make_index("no-such-backend");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("rbc-exact"), std::string::npos)
        << "error should list registered names, got: " << e.what();
  }
}

TEST(ApiRegistry, ReRegisteringATakenNameIsRejected) {
  EXPECT_FALSE(register_backend(
      {.name = "bruteforce",
       .create = [](const IndexOptions&) -> std::unique_ptr<Index> {
         return nullptr;
       },
       .magic = 0,
       .load = nullptr}));
}

class ApiBackendTest : public ::testing::TestWithParam<const char*> {};

TEST_P(ApiBackendTest, BuildsAndAnswersThroughTheUnifiedRequestApi) {
  const auto [X, Q] =
      testutil::split_rows(testutil::clustered_matrix(1'040, 12, 6, 1),
                           1'000);
  const index_t k = 5;

  auto index = make_index(GetParam(), {.rbc = {.seed = 2}});
  ASSERT_NE(index, nullptr);
  index->build(X);

  const IndexInfo info = index->info();
  EXPECT_EQ(info.backend, GetParam());
  EXPECT_EQ(info.size, X.rows());
  EXPECT_EQ(info.dim, X.cols());

  SearchRequest request{.queries = &Q, .k = k};
  request.options.collect_stats = true;
  const SearchResponse response = index->knn_search(request);
  EXPECT_EQ(response.knn.ids.rows(), Q.rows());
  EXPECT_EQ(response.knn.ids.cols(), k);
  EXPECT_EQ(response.stats.queries, Q.rows());

  const KnnResult reference = testutil::naive_knn(Q, X, k);
  if (info.exact) {
    EXPECT_TRUE(testutil::knn_equal(reference, response.knn))
        << GetParam() << " diverged from brute force";
  } else {
    // Probabilistic backend (one-shot): documented recall, not a guarantee.
    index_t agree = 0;
    for (index_t qi = 0; qi < Q.rows(); ++qi)
      if (response.knn.ids.at(qi, 0) == reference.ids.at(qi, 0)) ++agree;
    EXPECT_GT(agree, Q.rows() / 3)
        << GetParam() << " recall@1 collapsed: " << agree << "/" << Q.rows();
  }
}

TEST_P(ApiBackendTest, MatchesItsConcreteClassExactly) {
  const auto [X, Q] =
      testutil::split_rows(testutil::clustered_matrix(540, 8, 4, 3), 500);
  const index_t k = 3;
  const RbcParams params{.seed = 4};

  auto erased = make_index(GetParam(), {.rbc = params});
  erased->build(X);
  const KnnResult from_erased =
      erased->knn_search({.queries = &Q, .k = k}).knn;

  KnnResult from_concrete;
  const std::string name = GetParam();
  if (name == "bruteforce") {
    from_concrete = bf_knn(Q, X, k);
  } else if (name == "rbc-exact") {
    RbcExactIndex<> concrete;
    concrete.build(X, params);
    from_concrete = concrete.search(Q, k);
  } else if (name == "rbc-oneshot") {
    RbcOneShotIndex<> concrete;
    concrete.build(X, params);
    from_concrete = concrete.search(Q, k);
  } else if (name == "kdtree" || name == "balltree" || name == "covertree") {
    KdTree kd;
    BallTree<> ball;
    CoverTree<> cover;
    if (name == "kdtree") kd.build(X);
    if (name == "balltree") ball.build(X);
    if (name == "covertree") cover.build(X);
    from_concrete = KnnResult(Q.rows(), k);
    for (index_t qi = 0; qi < Q.rows(); ++qi) {
      TopK top(k);
      if (name == "kdtree") kd.knn(Q.row(qi), k, top);
      if (name == "balltree") ball.knn(Q.row(qi), k, top);
      if (name == "covertree") cover.knn(Q.row(qi), k, top);
      top.extract_sorted(from_concrete.dists.row(qi),
                         from_concrete.ids.row(qi));
    }
  }
  EXPECT_TRUE(testutil::knn_equal(from_concrete, from_erased))
      << name << ": type-erased adapter diverged from its concrete class";
}

TEST_P(ApiBackendTest, SaveLoadIndexRoundTripAnswersIdentically) {
  const auto [X, Q] =
      testutil::split_rows(testutil::clustered_matrix(330, 7, 4, 5), 300);
  const index_t k = 4;

  auto index = make_index(GetParam(), {.rbc = {.seed = 6}});
  index->build(X);
  ASSERT_TRUE(index->info().supports_save);
  const KnnResult before = index->knn_search({.queries = &Q, .k = k}).knn;

  std::stringstream stream;
  index->save(stream);
  const auto restored = load_index(stream);
  ASSERT_NE(restored, nullptr);
  EXPECT_EQ(restored->info().backend, GetParam());
  EXPECT_EQ(restored->info().size, X.rows());

  const KnnResult after = restored->knn_search({.queries = &Q, .k = k}).knn;
  EXPECT_TRUE(testutil::knn_equal(before, after))
      << GetParam() << ": restored index diverged";
}

TEST_P(ApiBackendTest, MalformedRequestsThrow) {
  const Matrix<float> X = testutil::random_matrix(50, 6, 7);
  const Matrix<float> Q = testutil::random_matrix(5, 6, 8);
  const Matrix<float> wrong_dim = testutil::random_matrix(5, 4, 9);

  auto index = make_index(GetParam());
  // Unbuilt index.
  EXPECT_THROW((void)index->knn_search({.queries = &Q, .k = 1}),
               std::invalid_argument);
  index->build(X);
  // Null queries, k == 0, k > database size, dimension mismatch.
  EXPECT_THROW((void)index->knn_search({.queries = nullptr, .k = 1}),
               std::invalid_argument);
  EXPECT_THROW((void)index->knn_search({.queries = &Q, .k = 0}),
               std::invalid_argument);
  EXPECT_THROW((void)index->knn_search({.queries = &Q, .k = X.rows() + 1}),
               std::invalid_argument);
  EXPECT_THROW((void)index->knn_search({.queries = &wrong_dim, .k = 1}),
               std::invalid_argument);
}

TEST(ApiErrors, KBeyondDatabaseSizeThrowsIdenticallyAcrossAllBackends) {
  // The unified contract (satellite of the error-path cleanup): k > n is a
  // request error everywhere — CPU and device backends alike — not
  // backend-specific padding, truncation, or UB. n is kept below the device
  // kernel's kMaxK so this check is what fires, not the GPU k limit.
  const auto [X, Q] =
      testutil::split_rows(testutil::clustered_matrix(28, 6, 3, 22), 24);
  for (const std::string& name : registered_backends()) {
    auto index = make_index(
        name, {.rbc = {.num_reps = 6, .seed = 23}, .gpu_workers = 2});
    index->build(X);
    try {
      (void)index->knn_search({.queries = &Q, .k = X.rows() + 1});
      FAIL() << name << " accepted k > database size";
    } catch (const std::invalid_argument& e) {
      EXPECT_NE(std::string(e.what()).find("exceeds database size"),
                std::string::npos)
          << name << " threw a different message: " << e.what();
    }
  }
}

TEST(ApiErrors, KBeyondPostDeleteSizeThrowsTheSameUniformError) {
  // Streaming-mutability satellite: when remove() shrinks the live set
  // below a previously valid k, the next search must fail with the exact
  // same uniform "exceeds database size" contract as build-time k > n —
  // not stale padding from tombstoned rows, and not a different message.
  const Matrix<float> X = testutil::clustered_matrix(12, 6, 3, 29);
  const Matrix<float> Q = testutil::random_matrix(3, 6, 30);
  for (const std::string& name : registered_backends()) {
    auto index = make_index(
        name, {.rbc = {.num_reps = 4, .seed = 31}, .num_shards = 2});
    if (!index->info().supports_mutation) continue;
    SCOPED_TRACE(name);
    index->build(X);
    EXPECT_NO_THROW((void)index->knn_search({.queries = &Q, .k = 10}));
    // Drop 4 rows: 8 live, so k = 10 now exceeds the database size even
    // though 12 physical rows sit behind the tombstones.
    EXPECT_EQ(index->remove(std::vector<index_t>{1, 4, 7, 10}), 4u);
    try {
      (void)index->knn_search({.queries = &Q, .k = 10});
      FAIL() << name << " accepted k > post-delete database size";
    } catch (const std::invalid_argument& e) {
      EXPECT_NE(std::string(e.what()).find("exceeds database size"),
                std::string::npos)
          << name << " threw a different message: " << e.what();
    }
    // k == the shrunken live count is the boundary and must pass.
    EXPECT_NO_THROW((void)index->knn_search({.queries = &Q, .k = 8}));
  }
}

INSTANTIATE_TEST_SUITE_P(CpuBackends, ApiBackendTest,
                         ::testing::ValuesIn(kCpuBackends),
                         [](const auto& info) {
                           std::string name = info.param;
                           std::replace(name.begin(), name.end(), '-', '_');
                           return name;
                         });

TEST(ApiRangeSearch, BruteforceAndRbcExactMatchTheNaiveReference) {
  const Matrix<float> X = testutil::clustered_matrix(800, 8, 5, 10);
  const Matrix<float> Q = testutil::random_matrix(20, 8, 11, -6.0f, 6.0f);
  const dist_t radius = 2.0f;

  for (const char* name : {"bruteforce", "rbc-exact"}) {
    auto index = make_index(name);
    index->build(X);
    ASSERT_TRUE(index->info().supports_range);
    const RangeResponse response =
        index->range_search({.queries = &Q, .radius = radius});
    ASSERT_EQ(response.ids.size(), Q.rows());
    for (index_t qi = 0; qi < Q.rows(); ++qi)
      EXPECT_EQ(response.ids[qi], testutil::naive_range(Q.row(qi), X, radius))
          << name << " query " << qi;
  }
}

TEST(ApiRangeSearch, IpRadiusIsANegatedDotThresholdAndMayBeNegative) {
  const Matrix<float> X = testutil::random_matrix(200, 6, 14);
  const Matrix<float> Q = testutil::random_matrix(5, 6, 15);
  auto index = make_index("bruteforce", {.metric = "ip"});
  index->build(X);

  // radius = -t selects all rows with dot(q, x) >= t; a negative radius is
  // the useful case and must pass validation under "ip".
  const float t = 0.25f;
  const RangeResponse response =
      index->range_search({.queries = &Q, .radius = -t});
  ASSERT_EQ(response.ids.size(), Q.rows());
  const InnerProduct metric{};
  for (index_t qi = 0; qi < Q.rows(); ++qi) {
    std::vector<index_t> expected;
    for (index_t j = 0; j < X.rows(); ++j)
      if (metric(Q.row(qi), X.row(j), X.cols()) <= -t) expected.push_back(j);
    EXPECT_EQ(response.ids[qi], expected) << "query " << qi;
  }

  // Real metrics keep the non-negativity rule.
  auto l2 = make_index("bruteforce");
  l2->build(X);
  EXPECT_THROW((void)l2->range_search({.queries = &Q, .radius = -1.0f}),
               std::invalid_argument);
}

TEST(ApiRangeSearch, UnsupportedBackendThrows) {
  const Matrix<float> X = testutil::random_matrix(30, 5, 12);
  const Matrix<float> Q = testutil::random_matrix(3, 5, 13);
  auto index = make_index("kdtree");
  index->build(X);
  EXPECT_FALSE(index->info().supports_range);
  EXPECT_THROW((void)index->range_search({.queries = &Q, .radius = 1.0f}),
               std::runtime_error);
}

TEST(ApiGpu, DeviceBackendsMatchBruteForceWithinKernelLimits) {
  const auto [X, Q] =
      testutil::split_rows(testutil::clustered_matrix(1'030, 10, 5, 14),
                           1'000);
  const index_t k = 3;
  const KnnResult reference = testutil::naive_knn(Q, X, k);

  auto gpu_bf = make_index("gpu-bf", {.gpu_workers = 2});
  gpu_bf->build(X);
  EXPECT_FALSE(gpu_bf->info().supports_save);
  const SearchResponse bf_resp = gpu_bf->knn_search({.queries = &Q, .k = k});
  EXPECT_TRUE(testutil::knn_equal(reference, bf_resp.knn));
  // k beyond the device kernel limit is a request error, not a crash.
  EXPECT_THROW(
      (void)gpu_bf->knn_search({.queries = &Q, .k = gpu::kMaxK + 1}),
      std::invalid_argument);

  auto gpu_oneshot = make_index(
      "gpu-oneshot",
      {.rbc = {.num_reps = 64, .points_per_rep = 64, .seed = 15},
       .gpu_workers = 2});
  gpu_oneshot->build(X);
  const KnnResult approx =
      gpu_oneshot->knn_search({.queries = &Q, .k = 1}).knn;
  index_t agree = 0;
  for (index_t qi = 0; qi < Q.rows(); ++qi)
    if (approx.ids.at(qi, 0) == reference.ids.at(qi, 0)) ++agree;
  EXPECT_GT(agree, Q.rows() / 3) << "gpu-oneshot recall collapsed";
}

TEST(ApiSerialization, ConcreteClassFilesLoadThroughTheUnifiedPath) {
  // Files written by the concrete RBC classes predate the unified API; the
  // registry resolves them from the same magic numbers.
  const Matrix<float> X = testutil::clustered_matrix(400, 6, 4, 16);
  const Matrix<float> Q = testutil::random_matrix(10, 6, 17);

  RbcExactIndex<> concrete;
  concrete.build(X, {.seed = 18});
  std::stringstream stream;
  concrete.save(stream);

  const auto restored = load_index(stream);
  EXPECT_EQ(restored->info().backend, "rbc-exact");
  EXPECT_TRUE(testutil::knn_equal(concrete.search(Q, 2),
                                  restored->knn_search({.queries = &Q, .k = 2})
                                      .knn));
}

TEST(ApiSerialization, GarbageStreamIsRejected) {
  std::stringstream stream("definitely not an index file");
  EXPECT_THROW((void)load_index(stream), std::runtime_error);
}

TEST(ApiStats, CollectStatsIsOffByDefaultAndOnByRequest) {
  const Matrix<float> X = testutil::clustered_matrix(500, 8, 4, 19);
  const Matrix<float> Q = testutil::random_matrix(25, 8, 20);

  auto index = make_index("rbc-exact", {.rbc = {.seed = 21}});
  index->build(X);

  const SearchResponse quiet = index->knn_search({.queries = &Q, .k = 2});
  EXPECT_EQ(quiet.stats.queries, 0u);

  SearchRequest request{.queries = &Q, .k = 2};
  request.options.collect_stats = true;
  const SearchResponse loud = index->knn_search(request);
  EXPECT_EQ(loud.stats.queries, Q.rows());
  EXPECT_GT(loud.stats.dist_evals(), 0u);
}

}  // namespace
}  // namespace rbc
