// Empirical checks of the paper's theory section (§6): the lemmas and
// claims are statements about distributions and bounds that the
// implementation should exhibit on real runs, not just in prose.
#include <gtest/gtest.h>

#include <algorithm>

#include "rbc/rbc.hpp"
#include "test_util.hpp"

namespace rbc {
namespace {

// ---- Lemma 1: if r* owns q's NN then rho(q, r*) <= 3 gamma. -------------

TEST(Theory, Lemma1HoldsOnRandomInstances) {
  Rng rng(1);
  const Euclidean m{};
  for (int trial = 0; trial < 20; ++trial) {
    const index_t n = 200 + rng.uniform_index(400);
    const index_t d = 2 + rng.uniform_index(16);
    const Matrix<float> X = testutil::clustered_matrix(n, d, 5, rng());
    RbcExactIndex<> index;
    index.build(X, {.num_reps = 1 + rng.uniform_index(n / 4), .seed = rng()});

    const Matrix<float> Q = testutil::random_matrix(10, d, rng(), -6.0f, 6.0f);
    for (index_t qi = 0; qi < Q.rows(); ++qi) {
      const float* q = Q.row(qi);
      // gamma = distance to nearest representative.
      dist_t gamma = kInfDist;
      for (index_t r = 0; r < index.num_reps(); ++r)
        gamma = std::min(gamma,
                         m(q, X.row(index.rep_ids()[r]), d));
      // Find q's true NN and its owner.
      const auto [nn_dist, nn_id] = bf_1nn(q, X);
      (void)nn_dist;
      index_t owner = kInvalidIndex;
      for (index_t r = 0; r < index.num_reps() && owner == kInvalidIndex;
           ++r)
        for (const index_t member : index.list_ids(r))
          if (member == nn_id) {
            owner = r;
            break;
          }
      ASSERT_NE(owner, kInvalidIndex);
      const dist_t owner_dist = m(q, X.row(index.rep_ids()[owner]), d);
      EXPECT_LE(owner_dist, 3.0f * gamma * (1.0f + 1e-5f))
          << "Lemma 1 violated: owner at " << owner_dist << ", gamma "
          << gamma;
    }
  }
}

// ---- Claim 1: E|B(q, gamma)| = n / nr. -----------------------------------

TEST(Theory, Claim1ExpectedBallSizeMatchesNOverNr) {
  // "The expected number of points in B(q, gamma) is n/nr" — over the
  // randomness of representative selection (Bernoulli model).
  const index_t n = 4'000;
  const index_t nr = 64;
  const auto [X, Q] =
      testutil::split_rows(testutil::clustered_matrix(n + 40, 10, 6, 2), n);
  const Euclidean m{};

  double total_ball = 0.0;
  int samples = 0;
  for (std::uint64_t seed = 0; seed < 30; ++seed) {
    RbcParams params;
    params.num_reps = nr;
    params.seed = seed * 77 + 5;
    params.sampling = Sampling::kBernoulli;  // the theory's model
    const std::vector<index_t> reps = choose_representatives(n, params);

    for (index_t qi = 0; qi < Q.rows(); qi += 8) {
      const float* q = Q.row(qi);
      dist_t gamma = kInfDist;
      for (const index_t rep : reps)
        gamma = std::min(gamma, m(q, X.row(rep), 10));
      index_t inside = 0;
      for (index_t x = 0; x < n; ++x)
        if (m(q, X.row(x), 10) < gamma) ++inside;
      total_ball += inside;
      ++samples;
    }
  }
  const double observed = total_ball / samples;
  const double predicted = static_cast<double>(n) / nr;  // 62.5
  // Monte-Carlo noise over 150 samples: allow a generous band.
  EXPECT_GT(observed, 0.4 * predicted);
  EXPECT_LT(observed, 2.5 * predicted);
}

// ---- Claim 2 corollary: examined points lie within 4 gamma of their rep. -

TEST(Theory, ExaminedMembersRespectThe4GammaWindow) {
  // The early exit stops a list at rho(x,r) > rho(q,r) + bound; with
  // bound <= gamma and rho(q,r) <= 3 gamma for unpruned reps (rule 2),
  // every computed member satisfies rho(x,r) <= 4 gamma — Claim 2's window.
  const auto [X, Q] =
      testutil::split_rows(testutil::clustered_matrix(2'020, 8, 6, 3),
                           2'000);
  RbcExactIndex<> index;
  index.build(X, {.seed = 4});
  const Euclidean m{};

  for (index_t qi = 0; qi < Q.rows(); ++qi) {
    const float* q = Q.row(qi);
    dist_t gamma = kInfDist;
    for (index_t r = 0; r < index.num_reps(); ++r)
      gamma = std::min(gamma, m(q, X.row(index.rep_ids()[r]), 8));
    const auto [nn_dist, nn_id] = bf_1nn(q, X);
    (void)nn_id;
    // Claim 2's conclusion: the NN lies inside B(q, 7 gamma).
    EXPECT_LE(nn_dist, 7.0f * gamma * (1.0f + 1e-5f));
  }
}

// ---- Theorem 1: the bound quantity |B(q, 7 gamma)| shrinks with nr. ------

TEST(Theory, SevenGammaBallShrinksWithMoreRepresentatives) {
  // Theorem 1 bounds second-stage work by |B(q, 7 gamma)| <= c^3 |B(q,
  // gamma)| with E|B(q, gamma)| = n/nr, so the ball population must fall
  // as nr grows. (Measured *work* is flatter than the bound — that is the
  // paper's own Appendix C observation — so the test checks the bound
  // quantity itself.)
  const index_t n = 6'000;
  const auto [X, Q] =
      testutil::split_rows(testutil::clustered_matrix(n + 60, 8, 8, 5), n);
  const Euclidean m{};

  double mean_ball[2];
  const index_t settings[2] = {40, 320};
  for (int i = 0; i < 2; ++i) {
    RbcParams params;
    params.num_reps = settings[i];
    params.seed = 6;
    const std::vector<index_t> reps = choose_representatives(n, params);
    double total = 0.0;
    for (index_t qi = 0; qi < Q.rows(); ++qi) {
      const float* q = Q.row(qi);
      dist_t gamma = kInfDist;
      for (const index_t rep : reps)
        gamma = std::min(gamma, m(q, X.row(rep), 8));
      index_t inside = 0;
      for (index_t x = 0; x < n; ++x)
        if (m(q, X.row(x), 8) <= 7.0f * gamma) ++inside;
      total += inside;
    }
    mean_ball[i] = total / Q.rows();
  }
  // 8x more representatives: the 7-gamma ball must clearly shrink.
  EXPECT_LT(mean_ball[1], 0.6 * mean_ball[0])
      << mean_ball[0] << " -> " << mean_ball[1];
}

// ---- Theorem 2: failure probability falls with the parameter. ------------

TEST(Theory, OneShotFailureRateDropsWithTheorem2Parameter) {
  const index_t n = 4'000;
  const auto [X, Q] =
      testutil::split_rows(testutil::clustered_matrix(n + 400, 8, 6, 7), n);

  double previous_failure = 1.1;
  for (const double delta : {0.5, 0.1, 0.02}) {
    const index_t param = oneshot_theory_params(n, /*c=*/2.0, delta);
    RbcOneShotIndex<> index;
    index.build(X, {.num_reps = param, .points_per_rep = param, .seed = 8});
    const KnnResult got = index.search(Q, 1);
    const KnnResult truth = bf_knn(Q, X, 1);
    index_t failures = 0;
    for (index_t qi = 0; qi < Q.rows(); ++qi)
      if (got.dists.at(qi, 0) != truth.dists.at(qi, 0)) ++failures;
    const double failure_rate =
        static_cast<double>(failures) / Q.rows();
    EXPECT_LE(failure_rate, delta + 0.05)
        << "delta " << delta << " param " << param;
    EXPECT_LE(failure_rate, previous_failure + 0.02);
    previous_failure = failure_rate;
  }
}

// ---- One-shot success condition: q within psi_r/2 of its rep. ------------

TEST(Theory, OneShotGuaranteeConditionImpliesSuccess) {
  // Theorem 2's proof core: "If a query q lies within distance psi_r/2 of a
  // representative r, then its nearest neighbor is guaranteed to be in
  // L_r." Verify the implication directly on built indexes.
  const auto [X, Q] =
      testutil::split_rows(testutil::clustered_matrix(1'530, 8, 5, 9),
                           1'500);
  RbcOneShotIndex<> index;
  index.build(X, {.num_reps = 60, .points_per_rep = 60, .seed = 10});
  const Euclidean m{};

  for (index_t qi = 0; qi < Q.rows(); ++qi) {
    const float* q = Q.row(qi);
    // Nearest representative.
    dist_t best = kInfDist;
    index_t best_rep = 0;
    for (index_t r = 0; r < index.num_reps(); ++r) {
      const dist_t d = m(q, X.row(index.rep_ids()[r]), 8);
      if (d < best) {
        best = d;
        best_rep = r;
      }
    }
    if (best > index.psi(best_rep) / 2) continue;  // condition not met
    // Then the true NN must be in the rep's list.
    const auto [nn_dist, nn_id] = bf_1nn(q, X);
    (void)nn_dist;
    const auto ids = index.list_ids(best_rep);
    const bool found = std::find(ids.begin(), ids.end(), nn_id) != ids.end();
    // Ties: another point at the same distance may take the list slot; the
    // guarantee is about distance, so check by distance.
    if (!found) {
      const auto result = index.search(Q, 1);
      EXPECT_EQ(result.dists.at(qi, 0), nn_dist) << "q" << qi;
    }
  }
}

}  // namespace
}  // namespace rbc
