// The query-tile blocked batch path of RbcExactIndex and the runtime ISA
// dispatch behind every dense scan: results must be IDENTICAL to the
// per-query adaptive path AND identical across every forced ISA — ties
// included — on every data shape and knob combination, because search()
// silently switches paths on batch size and the dispatcher silently
// switches kernels on CPUID. Each test compares against search_one (always
// adaptive) and/or against the scalar-forced dispatch.
#include <gtest/gtest.h>

#include <sstream>
#include <vector>

#include "api/api.hpp"
#include "distance/dispatch.hpp"
#include "rbc/rbc.hpp"
#include "test_util.hpp"

namespace rbc {
namespace {

/// Every ISA this binary can actually execute (scalar always; avx2/avx512
/// when compiled in and reported by CPUID — unsupported ones are skipped
/// gracefully, which is what the acceptance criterion asks for).
std::vector<dispatch::Isa> runnable_isas() {
  std::vector<dispatch::Isa> isas;
  for (const dispatch::Isa isa :
       {dispatch::Isa::kScalar, dispatch::Isa::kAvx2,
        dispatch::Isa::kAvx512})
    if (dispatch::isa_available(isa)) isas.push_back(isa);
  return isas;
}

/// RAII: pins an ISA for a scope, returns to runtime detection after.
struct IsaGuard {
  explicit IsaGuard(dispatch::Isa isa) { dispatch::force_isa(isa); }
  ~IsaGuard() { dispatch::clear_forced_isa(); }
};

/// Adaptive-path reference: per-query search_one, never blocked.
KnnResult adaptive_search(const RbcExactIndex<>& index,
                          const Matrix<float>& Q, index_t k) {
  KnnResult result(Q.rows(), k);
  RbcExactIndex<>::Scratch scratch;
  TopK top(k);
  for (index_t qi = 0; qi < Q.rows(); ++qi) {
    top.reset();
    index.search_one(Q.row(qi), k, top, scratch);
    top.extract_sorted(result.dists.row(qi), result.ids.row(qi));
  }
  return result;
}

TEST(RbcBlocked, TileKernelMatchesScalarWithinContractionSlack) {
  const index_t d = 37;  // odd, exercises no-padding assumptions
  const Matrix<float> X = testutil::random_matrix(100, d, 1);
  const Matrix<float> Q = testutil::random_matrix(dispatch::kTile, d, 2);

  const float* rows[dispatch::kTile];
  for (index_t t = 0; t < dispatch::kTile; ++t) rows[t] = Q.row(t);
  std::vector<float> qt(static_cast<std::size_t>(d) * dispatch::kTile);
  dispatch::pack_tile(rows, dispatch::kTile, d, qt.data());

  for (const dispatch::Isa isa : runnable_isas()) {
    const dispatch::KernelOps& ops = *dispatch::ops_for(isa);
    std::vector<float> out(static_cast<std::size_t>(X.rows()) *
                           dispatch::kTile);
    float lane_min[dispatch::kTile];
    ops.tile(qt.data(), d, X.data(), X.stride(), 0, X.rows(), out.data(),
             lane_min);

    for (index_t p = 0; p < X.rows(); ++p)
      for (index_t t = 0; t < dispatch::kTile; ++t) {
        const float ref = kernels::sq_l2_scalar(Q.row(t), X.row(p), d);
        const float got =
            out[static_cast<std::size_t>(p) * dispatch::kTile + t];
        EXPECT_NEAR(got, ref, 1e-5f + 1e-6f * ref)
            << dispatch::isa_name(isa) << " p=" << p << " t=" << t;
      }
  }
}

TEST(RbcBlocked, LargeBatchMatchesAdaptivePathExactly) {
  const auto [X, Q] =
      testutil::split_rows(testutil::clustered_matrix(3'256, 12, 8, 3),
                           3'000);  // 256 queries >> kBlockedMinBatch
  RbcExactIndex<> index;
  index.build(X, {.seed = 4});

  for (index_t k : {1u, 5u, 17u}) {
    const KnnResult blocked_result = index.search(Q, k);
    const KnnResult adaptive = adaptive_search(index, Q, k);
    EXPECT_TRUE(testutil::knn_equal(adaptive, blocked_result)) << "k=" << k;
    EXPECT_TRUE(
        testutil::knn_equal(testutil::naive_knn(Q, X, k), blocked_result))
        << "k=" << k << " vs brute force";
  }
}

TEST(RbcBlocked, TiesAndUniformDataMatchExactly) {
  // Duplicated rows force distance ties — the case the (distance, id) order
  // exists for; uniform data defeats pruning so segments span whole lists.
  const Matrix<float> base = testutil::random_matrix(500, 6, 5);
  const Matrix<float> X = testutil::with_duplicates(base, 300);
  const Matrix<float> Q = testutil::random_matrix(150, 6, 6);

  RbcExactIndex<> index;
  index.build(X, {.seed = 7});
  EXPECT_TRUE(testutil::knn_equal(adaptive_search(index, Q, 4),
                                  index.search(Q, 4)));
}

TEST(RbcBlocked, UnevenTailTileAndOddDimensions) {
  const auto [X, Q] = testutil::split_rows(
      testutil::clustered_matrix(2'069, 21, 7, 8), 2'000);  // 69 queries
  RbcExactIndex<> index;
  index.build(X, {.seed = 9});
  EXPECT_TRUE(testutil::knn_equal(adaptive_search(index, Q, 3),
                                  index.search(Q, 3)));
}

TEST(RbcBlocked, AnnulusAndApproxKnobsStayConsistent) {
  const auto [X, Q] =
      testutil::split_rows(testutil::clustered_matrix(2'128, 10, 6, 10),
                           2'000);

  RbcParams annulus{.seed = 11};
  annulus.use_annulus_bound = true;
  RbcExactIndex<> a;
  a.build(X, annulus);
  EXPECT_TRUE(
      testutil::knn_equal(adaptive_search(a, Q, 2), a.search(Q, 2)));

  // approx_eps: blocked and adaptive prune with the same shrunken bounds;
  // both must stay within the (1+eps) guarantee of the true distances.
  RbcParams approx{.seed = 11};
  approx.approx_eps = 0.5f;
  RbcExactIndex<> b;
  b.build(X, approx);
  const KnnResult truth = testutil::naive_knn(Q, X, 2);
  const KnnResult got = b.search(Q, 2);
  for (index_t qi = 0; qi < Q.rows(); ++qi)
    for (index_t j = 0; j < 2; ++j)
      EXPECT_LE(got.dists.at(qi, j),
                truth.dists.at(qi, j) * 1.5f * (1.0f + 1e-5f))
          << "q" << qi;
}

TEST(RbcBlocked, DynamicInsertEraseMatchesAdaptive) {
  const auto [X, Q] =
      testutil::split_rows(testutil::clustered_matrix(1'640, 8, 5, 12),
                           1'500);
  const Matrix<float> extra = testutil::clustered_matrix(60, 8, 5, 13);

  RbcExactIndex<> index;
  index.build(X, {.seed = 14});
  for (index_t i = 0; i < extra.rows(); ++i) index.insert(extra.row(i));
  for (index_t id = 0; id < 200; id += 7) index.erase(id);

  EXPECT_TRUE(testutil::knn_equal(adaptive_search(index, Q, 5),
                                  index.search(Q, 5)));
}

TEST(RbcBlocked, EmptyPackedSegmentStillScansOverflow) {
  // Regression: with the annulus bound on, a lane's packed-list window
  // [dr - b, dr + b] can be empty while the rep still survives pruning —
  // the blocked path must then still scan the rep's overflow list, where a
  // dynamically inserted point can be the true nearest neighbor.
  // Every point its own representative makes the geometry deterministic:
  // the inserted point (6,-6) routes to rep (20,0), whose only packed
  // member sits at member-distance 0 — outside the origin queries' annulus
  // window [dr - b, dr + b] = [11, 29] — while the inserted point (member
  // distance 15.2, true distance 8.49 < the 9.0 best packed answer) sits
  // inside it, in the overflow list.
  Matrix<float> X(3, 2);
  X.at(0, 0) = 0.0f;  X.at(0, 1) = 9.0f;
  X.at(1, 0) = 20.0f; X.at(1, 1) = 0.0f;
  X.at(2, 0) = 50.0f; X.at(2, 1) = 0.0f;

  RbcParams params{.num_reps = 3, .seed = 1};
  params.use_annulus_bound = true;
  RbcExactIndex<> index;
  index.build(X, params);
  const float inserted[2] = {6.0f, -6.0f};
  index.insert(inserted);

  Matrix<float> Q(RbcExactIndex<>::kBlockedMinBatch, 2);  // all at origin
  EXPECT_TRUE(testutil::knn_equal(adaptive_search(index, Q, 1),
                                  index.search(Q, 1)));
}

TEST(RbcBlocked, AnnulusWithDynamicInsertsMatchesAdaptive) {
  const auto [X, Q] =
      testutil::split_rows(testutil::clustered_matrix(1'680, 8, 5, 17),
                           1'500);
  const Matrix<float> extra = testutil::clustered_matrix(80, 8, 5, 18);

  RbcParams params{.seed = 19};
  params.use_annulus_bound = true;
  RbcExactIndex<> index;
  index.build(X, params);
  for (index_t i = 0; i < extra.rows(); ++i) index.insert(extra.row(i));

  EXPECT_TRUE(testutil::knn_equal(adaptive_search(index, Q, 3),
                                  index.search(Q, 3)));
}

TEST(RbcBlocked, StatsStayPlausibleOnTheBlockedPath) {
  const auto [X, Q] =
      testutil::split_rows(testutil::clustered_matrix(4'128, 10, 8, 15),
                           4'000);
  RbcExactIndex<> index;
  index.build(X, {.seed = 16});

  SearchStats stats;
  (void)index.search(Q, 1, &stats);
  EXPECT_EQ(stats.queries, Q.rows());
  EXPECT_EQ(stats.rep_dist_evals,
            static_cast<std::uint64_t>(Q.rows()) * index.num_reps());
  EXPECT_GT(stats.list_dist_evals, 0u);
  // Work stays bounded by brute force on clustered data even though the
  // blocked path refreshes bounds per representative, not per point.
  EXPECT_LT(stats.dist_evals_per_query(), static_cast<double>(X.rows()));
}

// ------------------------------------------------- forced-ISA parity ------
//
// The acceptance bar of the dispatch layer: every backend returns identical
// ids/dists under RBC_FORCE_ISA=scalar|avx2|avx512 (here forced through the
// equivalent programmatic hook; ISAs the host lacks are skipped — that IS
// the graceful degradation being tested).

TEST(ForcedIsaParity, AllBackendsMatchScalarReference) {
  // Duplicated rows manufacture ties; 69 queries leave a partial tile; the
  // clustered structure engages pruning and early exit.
  const Matrix<float> base = testutil::clustered_matrix(1'200, 13, 6, 21);
  const auto [X, Q] = testutil::split_rows(
      testutil::with_duplicates(base, 300), 1'431);  // 69 held-out queries
  const index_t k = 5;

  for (const char* backend :
       {"bruteforce", "rbc-exact", "rbc-oneshot", "kdtree", "balltree"}) {
    auto index = make_index(backend, {.rbc = {.seed = 22}});
    index->build(X);

    KnnResult reference;
    {
      IsaGuard guard(dispatch::Isa::kScalar);
      reference = index->knn_search({.queries = &Q, .k = k}).knn;
    }
    for (const dispatch::Isa isa : runnable_isas()) {
      IsaGuard guard(isa);
      const KnnResult got = index->knn_search({.queries = &Q, .k = k}).knn;
      EXPECT_TRUE(testutil::knn_equal(reference, got))
          << backend << " under " << dispatch::isa_name(isa);
    }
  }
}

TEST(ForcedIsaParity, SmallBatchesAndSingleQueries) {
  // Below every tile threshold: the row-block kernel path, per query.
  const auto [X, Q] = testutil::split_rows(
      testutil::clustered_matrix(807, 7, 5, 23), 800);  // 7 queries

  for (const char* backend : {"bruteforce", "rbc-exact", "rbc-oneshot"}) {
    auto index = make_index(backend, {.rbc = {.seed = 24}});
    index->build(X);

    KnnResult reference;
    {
      IsaGuard guard(dispatch::Isa::kScalar);
      reference = index->knn_search({.queries = &Q, .k = 3}).knn;
    }
    for (const dispatch::Isa isa : runnable_isas()) {
      IsaGuard guard(isa);
      const KnnResult got = index->knn_search({.queries = &Q, .k = 3}).knn;
      EXPECT_TRUE(testutil::knn_equal(reference, got))
          << backend << " under " << dispatch::isa_name(isa);
    }
  }
}

TEST(ForcedIsaParity, LongOverflowListsAndErasuresMatchAcrossIsas) {
  // Few representatives + many inserts => overflow lists long enough for
  // the gather-kernel path (>= kKernelMinSegment), plus tombstones and the
  // annulus knob. Compare every ISA against the scalar-forced dispatch AND
  // against the naive reference over the live set.
  const Matrix<float> X = testutil::clustered_matrix(600, 9, 4, 25);
  const Matrix<float> extra = testutil::clustered_matrix(200, 9, 4, 26);
  const Matrix<float> Q = testutil::random_matrix(40, 9, 27, -6.0f, 6.0f);

  RbcParams params{.num_reps = 4, .seed = 28};
  params.use_annulus_bound = true;
  RbcExactIndex<> index;
  index.build(X, params);
  for (index_t i = 0; i < extra.rows(); ++i) index.insert(extra.row(i));
  for (index_t id = 100; id < 700; id += 13) index.erase(id);
  ASSERT_GE(index.overflow_size(), RbcExactIndex<>::kKernelMinSegment);

  KnnResult reference;
  {
    IsaGuard guard(dispatch::Isa::kScalar);
    reference = index.search(Q, 4);
  }
  for (const dispatch::Isa isa : runnable_isas()) {
    IsaGuard guard(isa);
    EXPECT_TRUE(testutil::knn_equal(reference, index.search(Q, 4)))
        << dispatch::isa_name(isa);
  }
}

TEST(ForcedIsaParity, SerializedIndexSearchesIdenticallyAfterReload) {
  // The norms cache is derived state, recomputed at load — a reloaded index
  // must answer identically under every ISA.
  const auto [X, Q] = testutil::split_rows(
      testutil::clustered_matrix(1'050, 11, 6, 29), 1'000);
  RbcExactIndex<> index;
  index.build(X, {.seed = 30});

  std::stringstream stream;
  index.save(stream);
  const RbcExactIndex<> reloaded = RbcExactIndex<>::load(stream);

  for (const dispatch::Isa isa : runnable_isas()) {
    IsaGuard guard(isa);
    EXPECT_TRUE(
        testutil::knn_equal(index.search(Q, 3), reloaded.search(Q, 3)))
        << dispatch::isa_name(isa);
  }
}

}  // namespace
}  // namespace rbc
