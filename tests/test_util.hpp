// Shared helpers for the test suite: reference implementations and data
// builders. Reference code here is deliberately naive (straight loops over
// std::sort) so it cannot share bugs with the optimized library paths.
#pragma once

#include <algorithm>
#include <cmath>
#include <vector>

#include "bruteforce/bf.hpp"
#include "common/matrix.hpp"
#include "common/rng.hpp"
#include "distance/metrics.hpp"

namespace rbc::testutil {

/// Uniform random matrix in [lo, hi]^d.
inline Matrix<float> random_matrix(index_t rows, index_t cols,
                                   std::uint64_t seed, float lo = -1.0f,
                                   float hi = 1.0f) {
  Matrix<float> m(rows, cols);
  Rng rng(seed);
  for (index_t i = 0; i < rows; ++i)
    for (index_t j = 0; j < cols; ++j)
      m.at(i, j) = rng.uniform_float(lo, hi);
  return m;
}

/// Clustered random matrix (several tight Gaussian blobs): produces the
/// non-uniform neighborhood structure that actually exercises pruning.
inline Matrix<float> clustered_matrix(index_t rows, index_t cols,
                                      index_t clusters, std::uint64_t seed) {
  Matrix<float> centers = random_matrix(clusters, cols, seed, -5.0f, 5.0f);
  Matrix<float> m(rows, cols);
  Rng rng(seed + 1);
  for (index_t i = 0; i < rows; ++i) {
    const index_t c = rng.uniform_index(clusters);
    for (index_t j = 0; j < cols; ++j)
      m.at(i, j) = centers.at(c, j) + rng.normal_float(0.0f, 0.3f);
  }
  return m;
}

/// Copies `extra` duplicated rows onto the end of m (row i duplicates row
/// i % original_rows), producing guaranteed distance ties.
inline Matrix<float> with_duplicates(const Matrix<float>& m, index_t extra) {
  Matrix<float> out(m.rows() + extra, m.cols());
  for (index_t i = 0; i < m.rows(); ++i) out.copy_row_from(m, i, i);
  for (index_t e = 0; e < extra; ++e)
    out.copy_row_from(m, e % m.rows(), m.rows() + e);
  return out;
}

/// Splits m into (first n1 rows, remaining rows) — used to hold out
/// in-distribution queries, the evaluation protocol of the paper.
inline std::pair<Matrix<float>, Matrix<float>> split_rows(
    const Matrix<float>& m, index_t n1) {
  Matrix<float> a(n1, m.cols());
  Matrix<float> b(m.rows() - n1, m.cols());
  for (index_t i = 0; i < n1; ++i) a.copy_row_from(m, i, i);
  for (index_t i = n1; i < m.rows(); ++i) b.copy_row_from(m, i, i - n1);
  return {std::move(a), std::move(b)};
}

/// Naive exact k-NN reference under the library's (distance, id) order.
template <class M = Euclidean>
KnnResult naive_knn(const Matrix<float>& Q, const Matrix<float>& X, index_t k,
                    M metric = {}) {
  KnnResult result(Q.rows(), k);
  for (index_t qi = 0; qi < Q.rows(); ++qi) {
    std::vector<std::pair<dist_t, index_t>> all;
    all.reserve(X.rows());
    for (index_t j = 0; j < X.rows(); ++j)
      all.emplace_back(metric(Q.row(qi), X.row(j), Q.cols()), j);
    std::sort(all.begin(), all.end());
    for (index_t j = 0; j < k; ++j) {
      if (j < all.size()) {
        result.dists.at(qi, j) = all[j].first;
        result.ids.at(qi, j) = all[j].second;
      } else {
        result.dists.at(qi, j) = kInfDist;
        result.ids.at(qi, j) = kInvalidIndex;
      }
    }
  }
  return result;
}

/// Naive range search reference: sorted ids of points within radius.
inline std::vector<index_t> naive_range(const float* q,
                                        const Matrix<float>& X, dist_t radius) {
  const Euclidean metric{};
  std::vector<index_t> hits;
  for (index_t j = 0; j < X.rows(); ++j)
    if (metric(q, X.row(j), X.cols()) <= radius) hits.push_back(j);
  return hits;
}

/// Asserts (via gtest-compatible bool) that two KnnResults are identical.
inline bool knn_equal(const KnnResult& a, const KnnResult& b) {
  if (a.ids.rows() != b.ids.rows() || a.ids.cols() != b.ids.cols())
    return false;
  for (index_t i = 0; i < a.ids.rows(); ++i)
    for (index_t j = 0; j < a.ids.cols(); ++j) {
      if (a.ids.at(i, j) != b.ids.at(i, j)) return false;
      const float da = a.dists.at(i, j), db = b.dists.at(i, j);
      if (!(da == db || (std::isinf(da) && std::isinf(db)))) return false;
    }
  return true;
}

}  // namespace rbc::testutil
