// End-to-end integration: the full pipelines the benchmarks and examples
// run, at test-sized scale — dataset surrogate -> index -> search -> quality
// metrics, plus cross-checks between all four search implementations
// (brute force, exact RBC, cover tree, kd-tree) on the same data.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "baselines/covertree.hpp"
#include "baselines/kdtree.hpp"
#include "data/expansion_rate.hpp"
#include "data/generators.hpp"
#include "data/io.hpp"
#include "data/rank_error.hpp"
#include "rbc/rbc.hpp"
#include "test_util.hpp"

namespace rbc {
namespace {

TEST(Integration, EveryExactBackendAgreesOnSurrogateData) {
  // The cross-backend contract, exercised through the unified API: every
  // registered exact backend answers identically to brute force (ties
  // included) on the same surrogate data.
  const data::DataSplit split =
      data::make_benchmark_data(data::dataset_by_name("robot"), 2'000, 50, 1);
  const Matrix<float>& X = split.database;
  const Matrix<float>& Q = split.queries;
  const index_t k = 3;

  const KnnResult brute = bf_knn(Q, X, k);
  const SearchRequest request{.queries = &Q, .k = k};

  for (const char* name :
       {"bruteforce", "rbc-exact", "covertree", "kdtree", "balltree"}) {
    auto index = make_index(name, {.rbc = {.seed = 2}});
    index->build(X);
    ASSERT_TRUE(index->info().exact) << name;
    EXPECT_TRUE(testutil::knn_equal(brute, index->knn_search(request).knn))
        << name;
  }
}

TEST(Integration, EveryPaperSurrogateSupportsTheFullPipeline) {
  for (const auto& spec : data::paper_datasets()) {
    const data::DataSplit split = data::make_benchmark_data(spec, 1'000, 30, 3);
    RbcExactIndex<> exact;
    exact.build(split.database, {.seed = 4});
    const KnnResult expected =
        testutil::naive_knn(split.queries, split.database, 1);
    EXPECT_TRUE(
        testutil::knn_equal(expected, exact.search(split.queries, 1)))
        << spec.name;

    RbcOneShotIndex<> oneshot;
    oneshot.build(split.database, {.seed = 5});
    const double recall = data::recall_at_1(split.queries, split.database,
                                            oneshot.search(split.queries, 1));
    EXPECT_GT(recall, 0.3) << spec.name << " one-shot recall collapsed";
  }
}

TEST(Integration, ExpansionEstimateFeedsTheoryParams) {
  const Matrix<float> X =
      data::make_dataset(data::dataset_by_name("bio"), 2'000, 6);
  const data::ExpansionEstimate est = data::estimate_expansion_rate(X, 20, 7);
  ASSERT_GT(est.c_q90, 1.0);

  const index_t param =
      oneshot_theory_params(X.rows(), est.c_q90, /*delta=*/0.05);
  EXPECT_GE(param, 1u);
  EXPECT_LE(param, X.rows());

  RbcOneShotIndex<> index;
  index.build(X, {.num_reps = param, .points_per_rep = param, .seed = 8});
  const Matrix<float> Q = testutil::random_matrix(100, X.cols(), 9, -3.0f, 3.0f);
  // Theory target is 95%; surrogate data and the estimator are both
  // approximate, so test a loose floor.
  EXPECT_GT(data::recall_at_1(Q, X, index.search(Q, 1)), 0.7);
}

TEST(Integration, IndexPersistsThroughFileSystem) {
  const Matrix<float> X = testutil::clustered_matrix(800, 12, 6, 10);
  RbcExactIndex<> index;
  index.build(X, {.seed = 11});

  const std::string path = ::testing::TempDir() + "/rbc_exact.idx";
  {
    std::ofstream os(path, std::ios::binary);
    index.save(os);
  }
  std::ifstream is(path, std::ios::binary);
  const RbcExactIndex<> restored = RbcExactIndex<>::load(is);
  const Matrix<float> Q = testutil::random_matrix(20, 12, 12, -6.0f, 6.0f);
  EXPECT_TRUE(testutil::knn_equal(index.search(Q, 4), restored.search(Q, 4)));
  std::remove(path.c_str());
}

TEST(Integration, MatrixPersistsThroughFileSystem) {
  const Matrix<float> X = testutil::random_matrix(100, 9, 13);
  const std::string bin = ::testing::TempDir() + "/mat.bin";
  const std::string csv = ::testing::TempDir() + "/mat.csv";
  data::save_matrix(X, bin);
  data::save_csv(X, csv);
  const Matrix<float> from_bin = data::load_matrix(bin);
  const Matrix<float> from_csv = data::load_csv(csv);
  ASSERT_EQ(from_bin.rows(), X.rows());
  ASSERT_EQ(from_csv.rows(), X.rows());
  for (index_t i = 0; i < X.rows(); ++i)
    for (index_t j = 0; j < X.cols(); ++j) {
      EXPECT_EQ(from_bin.at(i, j), X.at(i, j));
      EXPECT_NEAR(from_csv.at(i, j), X.at(i, j), 1e-4f);  // CSV text round-off
    }
  std::remove(bin.c_str());
  std::remove(csv.c_str());
}

TEST(Integration, RankErrorIdentifiesExactAndApproximateAnswers) {
  const Matrix<float> X = testutil::clustered_matrix(1'000, 8, 5, 14);
  const Matrix<float> Q = testutil::random_matrix(50, 8, 15, -6.0f, 6.0f);

  // Exact answers: rank 0 everywhere, recall 1.
  RbcExactIndex<> exact;
  exact.build(X, {.seed = 16});
  const KnnResult exact_result = exact.search(Q, 1);
  EXPECT_EQ(data::mean_rank(Q, X, exact_result), 0.0);
  EXPECT_EQ(data::recall_at_1(Q, X, exact_result), 1.0);

  // Degraded one-shot (tiny lists): positive mean rank, recall < 1.
  RbcOneShotIndex<> weak;
  weak.build(X, {.num_reps = 4, .points_per_rep = 4, .seed = 17});
  const KnnResult weak_result = weak.search(Q, 1);
  EXPECT_GT(data::mean_rank(Q, X, weak_result), 0.0);
  EXPECT_LT(data::recall_at_1(Q, X, weak_result), 1.0);
}

TEST(Integration, WorkAccountingConsistentBetweenStatsAndCounters) {
  const Matrix<float> X = testutil::clustered_matrix(2'000, 10, 6, 18);
  const Matrix<float> Q = testutil::random_matrix(30, 10, 19, -6.0f, 6.0f);
  RbcExactIndex<> index;
  index.build(X, {.seed = 20});

  counters::reset();
  SearchStats stats;
  counters::Scope scope;
  index.search(Q, 1, &stats);
  // Global counter and per-search stats must agree on total distance evals.
  EXPECT_EQ(scope.delta(), stats.dist_evals());
}

}  // namespace
}  // namespace rbc
