// Thread-safety of const query paths: a built index is immutable, so any
// number of threads may search it concurrently; results must match the
// serial reference exactly. (CP.2: no data races — the test runs under the
// same build the sanitizer CI would use.)
#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "dist/distributed_rbc.hpp"
#include "rbc/rbc.hpp"
#include "test_util.hpp"

namespace rbc {
namespace {

TEST(Concurrency, ParallelExactSearchesMatchSerial) {
  const auto [X, Q] =
      testutil::split_rows(testutil::clustered_matrix(2'064, 10, 6, 1),
                           2'000);
  RbcExactIndex<> index;
  index.build(X, {.seed = 2});

  const KnnResult reference = index.search(Q, 3);

  constexpr int kThreads = 8;
  std::vector<KnnResult> results(kThreads);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t)
    threads.emplace_back([&, t] {
      // Each thread runs its own single-query loop with private scratch.
      KnnResult mine(Q.rows(), 3);
      RbcExactIndex<>::Scratch scratch;
      TopK top(3);
      for (index_t qi = 0; qi < Q.rows(); ++qi) {
        top.reset();
        index.search_one(Q.row(qi), 3, top, scratch);
        top.extract_sorted(mine.dists.row(qi), mine.ids.row(qi));
      }
      results[static_cast<std::size_t>(t)] = std::move(mine);
    });
  for (auto& thread : threads) thread.join();

  for (const KnnResult& r : results)
    EXPECT_TRUE(testutil::knn_equal(reference, r));
}

TEST(Concurrency, ParallelOneShotSearchesMatchSerial) {
  const auto [X, Q] =
      testutil::split_rows(testutil::clustered_matrix(1'050, 8, 5, 3),
                           1'000);
  RbcOneShotIndex<> index;
  index.build(X, {.num_reps = 40, .points_per_rep = 40, .seed = 4});

  const KnnResult reference = index.search(Q, 2);

  std::vector<std::thread> threads;
  std::vector<KnnResult> results(6);
  for (int t = 0; t < 6; ++t)
    threads.emplace_back([&, t] {
      results[static_cast<std::size_t>(t)] = index.search(Q, 2);
    });
  for (auto& thread : threads) thread.join();
  for (const KnnResult& r : results)
    EXPECT_TRUE(testutil::knn_equal(reference, r));
}

TEST(Concurrency, ConcurrentRangeSearches) {
  const Matrix<float> X = testutil::clustered_matrix(1'000, 8, 5, 5);
  const Matrix<float> Q = testutil::random_matrix(32, 8, 6, -6.0f, 6.0f);
  RbcExactIndex<> index;
  index.build(X, {.seed = 7});

  std::vector<std::vector<index_t>> reference(Q.rows());
  for (index_t qi = 0; qi < Q.rows(); ++qi)
    reference[qi] = index.range_search(Q.row(qi), 2.0f);

  std::vector<std::thread> threads;
  std::vector<bool> ok(4, false);
  for (int t = 0; t < 4; ++t)
    threads.emplace_back([&, t] {
      bool all_equal = true;
      for (index_t qi = 0; qi < Q.rows(); ++qi)
        if (index.range_search(Q.row(qi), 2.0f) != reference[qi])
          all_equal = false;
      ok[static_cast<std::size_t>(t)] = all_equal;
    });
  for (auto& thread : threads) thread.join();
  for (const bool flag : ok) EXPECT_TRUE(flag);
}

TEST(Concurrency, DistributedSearchFromMultipleThreads) {
  const auto [X, Q] =
      testutil::split_rows(testutil::clustered_matrix(1'040, 9, 6, 8),
                           1'000);
  dist::DistributedRbc cluster;
  cluster.build(X, 4, {.seed = 9});

  const KnnResult reference = testutil::naive_knn(Q, X, 2);
  std::vector<std::thread> threads;
  std::vector<KnnResult> results(4);
  for (int t = 0; t < 4; ++t)
    threads.emplace_back([&, t] {
      results[static_cast<std::size_t>(t)] = cluster.search(Q, 2);
    });
  for (auto& thread : threads) thread.join();
  for (const KnnResult& r : results)
    EXPECT_TRUE(testutil::knn_equal(reference, r));
}

}  // namespace
}  // namespace rbc
