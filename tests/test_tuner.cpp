#include <gtest/gtest.h>

#include "rbc/rbc.hpp"
#include "rbc/tuner.hpp"
#include "test_util.hpp"

namespace rbc {
namespace {

TEST(TunerExact, ChoosesACandidateAndReportsSweep) {
  const auto [X, Q] =
      testutil::split_rows(testutil::clustered_matrix(2'040, 10, 7, 1),
                           2'000);
  const std::vector<index_t> candidates = {10, 45, 180, 700};
  const TuneResult tuned =
      tune_exact_num_reps(X, Q, 1, {.seed = 2}, candidates);

  EXPECT_TRUE(std::find(candidates.begin(), candidates.end(),
                        tuned.num_reps) != candidates.end());
  ASSERT_EQ(tuned.sweep.size(), candidates.size());
  // The chosen objective is the minimum of the sweep.
  for (const auto& [nr, work] : tuned.sweep)
    EXPECT_GE(work, tuned.objective);
}

TEST(TunerExact, TunedSettingBeatsWorstCandidate) {
  const auto [X, Q] =
      testutil::split_rows(testutil::clustered_matrix(3'040, 8, 8, 3),
                           3'000);
  const TuneResult tuned = tune_exact_num_reps(X, Q, 1, {.seed = 4});
  double worst = 0.0;
  for (const auto& [nr, work] : tuned.sweep) worst = std::max(worst, work);
  EXPECT_LT(tuned.objective, worst);

  // And the tuned index actually performs at the measured level.
  RbcExactIndex<> index;
  index.build(X, {.num_reps = tuned.num_reps, .seed = 4});
  SearchStats stats;
  (void)index.search(Q, 1, &stats);
  EXPECT_NEAR(stats.dist_evals_per_query(), tuned.objective,
              0.05 * tuned.objective + 1.0);
}

TEST(TunerExact, DefaultLadderCoversSqrtN) {
  const Matrix<float> X = testutil::clustered_matrix(1'600, 6, 5, 5);
  const Matrix<float> Q = testutil::random_matrix(20, 6, 6, -6.0f, 6.0f);
  const TuneResult tuned = tune_exact_num_reps(X, Q, 1, {.seed = 7});
  // sqrt(1600) = 40; the ladder spans 0.25x .. 8x.
  ASSERT_FALSE(tuned.sweep.empty());
  EXPECT_EQ(tuned.sweep.front().first, 10u);
  EXPECT_EQ(tuned.sweep.back().first, 320u);
}

TEST(TunerOneShot, PicksSmallestSettingReachingTarget) {
  const auto [X, Q] =
      testutil::split_rows(testutil::clustered_matrix(2'100, 10, 7, 8),
                           2'000);
  const std::vector<index_t> candidates = {8, 30, 90, 270, 800};
  const TuneResult tuned =
      tune_oneshot_params(X, Q, /*target_recall=*/0.8, {.seed = 9},
                          candidates);
  EXPECT_GE(tuned.objective, 0.8);
  // Every smaller candidate in the sweep must have missed the target.
  for (const auto& [param, recall] : tuned.sweep)
    if (param < tuned.num_reps) EXPECT_LT(recall, 0.8);
}

TEST(TunerOneShot, UnreachableTargetFallsBackToBest) {
  const Matrix<float> X = testutil::clustered_matrix(800, 8, 5, 10);
  const Matrix<float> Q = testutil::random_matrix(40, 8, 11, -6.0f, 6.0f);
  // Tiny candidates cannot reach recall 1.0 on out-of-distribution queries.
  const TuneResult tuned =
      tune_oneshot_params(X, Q, 1.01, {.seed = 12}, {4, 8});
  EXPECT_TRUE(tuned.num_reps == 4 || tuned.num_reps == 8);
  double best = -1.0;
  for (const auto& [param, recall] : tuned.sweep)
    best = std::max(best, recall);
  EXPECT_EQ(tuned.objective, best);
}

TEST(TunerOneShot, RecallSweepIsBroadlyIncreasing) {
  const auto [X, Q] =
      testutil::split_rows(testutil::clustered_matrix(2'100, 9, 6, 13),
                           2'000);
  const TuneResult tuned =
      tune_oneshot_params(X, Q, 2.0 /* never reached: full sweep */,
                          {.seed = 14});
  ASSERT_GE(tuned.sweep.size(), 3u);
  EXPECT_LT(tuned.sweep.front().second, tuned.sweep.back().second + 1e-9);
}

}  // namespace
}  // namespace rbc
