// The metric-functor registry (metricspace/space.hpp): registration
// contracts, and a user-defined metric registered at runtime and served
// end-to-end — through the factory, the conformance matrix, serialization,
// the sharded composite, and SearchService. This is the extension story the
// generic subsystem promises: register_space() is the only step a user
// metric needs to ride the whole stack.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <sstream>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "common/counters.hpp"
#include "conformance.hpp"
#include "metricspace/dataset.hpp"
#include "metricspace/space.hpp"
#include "serve/service.hpp"

namespace rbc {
namespace {

/// A user metric: the trie-path distance d(a, b) = |a| + |b| - 2 * lcp(a, b)
/// — the path length between two strings in the prefix trie. A tree metric
/// (so the triangle inequality holds), integral (so exactly
/// float-representable, as the registry requires), and nothing the shipped
/// spaces compute.
class TriePathSpace final : public metricspace::Space {
 public:
  explicit TriePathSpace(metricspace::DatasetHandle data)
      : data_(std::move(data)) {}

  index_t size() const override { return data_->size(); }

  double distance(index_t i, index_t j) const override {
    return query_distance(data_->item(i), j);
  }

  double query_distance(std::string_view query, index_t j) const override {
    const std::string_view item = data_->item(j);
    std::size_t lcp = 0;
    const std::size_t cap = std::min(query.size(), item.size());
    while (lcp < cap && query[lcp] == item[lcp]) ++lcp;
    counters::add_metric_cost(lcp + 1);  // prefix chars examined
    return static_cast<double>(query.size() + item.size() - 2 * lcp);
  }

 private:
  metricspace::DatasetHandle data_;
};

/// Registers "trie-path" once per process; later calls return the first
/// call's outcome (register_space itself is idempotent-by-rejection).
bool register_trie_path() {
  static const bool registered = metricspace::register_space(
      {.name = "trie-path",
       .dataset_kind = "strings",
       .cost_unit = "prefix_chars",
       .bind = [](metricspace::DatasetHandle data)
           -> std::unique_ptr<metricspace::Space> {
         return std::make_unique<TriePathSpace>(std::move(data));
       }});
  return registered;
}

TEST(MetricSpaceRegistry, UserRegistrationFollowsTheRegistryContract) {
  ASSERT_TRUE(register_trie_path());

  // Idempotent-by-rejection: a taken name changes nothing.
  EXPECT_FALSE(metricspace::register_space(
      {.name = "trie-path", .dataset_kind = "strings", .cost_unit = "x",
       .bind = nullptr}));
  // Shipped space names and dense metric names cannot be shadowed.
  EXPECT_FALSE(metricspace::register_space(
      {.name = "edit", .dataset_kind = "strings", .cost_unit = "x",
       .bind = nullptr}));
  EXPECT_FALSE(metricspace::register_space(
      {.name = "l2", .dataset_kind = "strings", .cost_unit = "x",
       .bind = nullptr}));

  EXPECT_TRUE(metricspace::space_registered("trie-path"));
  EXPECT_FALSE(metricspace::space_registered("no-such-space"));
  EXPECT_EQ(metricspace::find_space("no-such-space"), nullptr);

  const metricspace::SpaceEntry* entry = metricspace::find_space("trie-path");
  ASSERT_NE(entry, nullptr);
  EXPECT_EQ(entry->dataset_kind, "strings");
  EXPECT_EQ(entry->cost_unit, "prefix_chars");

  // Registration order: shipped spaces first, user spaces after.
  const std::vector<std::string> names = metricspace::space_names();
  ASSERT_GE(names.size(), 3u);
  EXPECT_EQ(names[0], "edit");
  EXPECT_EQ(names[1], "graph-sp");
  EXPECT_NE(std::find(names.begin(), names.end(), "trie-path"), names.end());
}

TEST(MetricSpaceRegistry, BindValidatesNameHandleAndKind) {
  ASSERT_TRUE(register_trie_path());
  const metricspace::DatasetHandle strings =
      metricspace::make_string_dataset({"ab", "abc", "b"});
  const metricspace::DatasetHandle graph =
      metricspace::make_graph_dataset(3, {{0, 1, 1.0f}, {1, 2, 1.0f}});

  EXPECT_THROW((void)metricspace::bind_space("no-such-space", strings),
               std::invalid_argument);
  EXPECT_THROW((void)metricspace::bind_space("trie-path", nullptr),
               std::invalid_argument);
  EXPECT_THROW((void)metricspace::bind_space("trie-path", graph),
               std::invalid_argument);

  const auto space = metricspace::bind_space("trie-path", strings);
  ASSERT_NE(space, nullptr);
  EXPECT_EQ(space->size(), 3u);
  EXPECT_EQ(space->distance(0, 1), 1.0);   // "ab" -> "abc": one trie edge
  EXPECT_EQ(space->distance(0, 2), 3.0);   // "ab" vs "b": no shared prefix
  EXPECT_EQ(space->query_distance("abd", 1), 2.0);
}

// Registering a space *is* opting into the conformance matrix: once
// "trie-path" exists, the generic-space checks pick it up from
// supported_spaces and run the user metric through the same exactness,
// round-trip, and sharded bit-parity obligations as the shipped spaces.
TEST(MetricSpaceRegistry, UserSpaceRidesTheConformanceMatrix) {
  ASSERT_TRUE(register_trie_path());
  ASSERT_NE(std::find(make_index("rbc-exact", conformance::suite_options())
                          ->info()
                          .supported_spaces.begin(),
                      make_index("rbc-exact", conformance::suite_options())
                          ->info()
                          .supported_spaces.end(),
                      std::string("trie-path")),
            make_index("rbc-exact", conformance::suite_options())
                ->info()
                .supported_spaces.end());
  conformance::check_payload_space_coverage("rbc-exact");
  conformance::check_payload_answers("rbc-exact");
  conformance::check_payload_serialize_roundtrip("rbc-exact");
  conformance::check_payload_sharded_parity("sharded:rbc-exact");
}

// The user metric served end-to-end: SearchService batches trie-path
// queries through the same payload path as the shipped spaces, answers
// bit-identically to a direct search, and meters work in the functor's own
// cost unit.
TEST(MetricSpaceRegistry, UserSpaceIsServedThroughSearchService) {
  ASSERT_TRUE(register_trie_path());
  const std::vector<std::string> words =
      conformance::payload_words(150, 6, 301);
  const metricspace::DatasetHandle data =
      metricspace::make_string_dataset(words);

  IndexOptions options;
  options.metric = "trie-path";
  options.rbc.seed = 5;
  auto direct = make_index("rbc-exact", options);
  direct->build_payload(data);
  EXPECT_EQ(direct->info().cost_unit, "prefix_chars");
  const std::vector<std::string> queries =
      conformance::payload_words(8, 6, 302);
  const KnnResult expected =
      direct->knn_search_payload({.queries = &queries, .k = 3}).knn;

  auto served = make_index("rbc-exact", options);
  served->build_payload(data);
  serve::SearchService service(std::move(served));
  for (std::size_t qi = 0; qi < queries.size(); ++qi) {
    const serve::QueryResult result =
        service.submit_payload(queries[qi], 3).get();
    ASSERT_EQ(result.ids.size(), 3u);
    for (index_t j = 0; j < 3; ++j) {
      EXPECT_EQ(result.ids[j], expected.ids.at(static_cast<index_t>(qi), j));
      EXPECT_EQ(result.dists[j],
                expected.dists.at(static_cast<index_t>(qi), j));
    }
  }
  const serve::ServiceStats stats = service.stats();
  EXPECT_EQ(stats.completed, queries.size());
  EXPECT_GT(stats.metric_cost, 0u)
      << "the user functor's add_metric_cost must reach ServiceStats";
}

}  // namespace
}  // namespace rbc
