#include <gtest/gtest.h>

#include <sstream>

#include "rbc/rbc.hpp"
#include "test_util.hpp"

namespace rbc {
namespace {

TEST(Serialize, ExactIndexRoundTripsBitExactly) {
  const Matrix<float> X = testutil::clustered_matrix(600, 11, 6, 1);
  const Matrix<float> Q = testutil::random_matrix(30, 11, 2, -6.0f, 6.0f);

  RbcExactIndex<> original;
  original.build(X, {.num_reps = 22, .seed = 3});

  std::stringstream stream;
  original.save(stream);
  const RbcExactIndex<> restored = RbcExactIndex<>::load(stream);

  EXPECT_EQ(restored.size(), original.size());
  EXPECT_EQ(restored.dim(), original.dim());
  EXPECT_EQ(restored.num_reps(), original.num_reps());
  EXPECT_EQ(restored.rep_ids(), original.rep_ids());
  for (index_t r = 0; r < original.num_reps(); ++r)
    EXPECT_EQ(restored.psi(r), original.psi(r));

  EXPECT_TRUE(
      testutil::knn_equal(original.search(Q, 5), restored.search(Q, 5)));
}

TEST(Serialize, OneShotIndexRoundTripsBitExactly) {
  const Matrix<float> X = testutil::clustered_matrix(500, 9, 5, 4);
  const Matrix<float> Q = testutil::random_matrix(30, 9, 5, -6.0f, 6.0f);

  RbcOneShotIndex<> original;
  original.build(X, {.num_reps = 18, .points_per_rep = 24, .seed = 6});

  std::stringstream stream;
  original.save(stream);
  const RbcOneShotIndex<> restored = RbcOneShotIndex<>::load(stream);

  EXPECT_EQ(restored.size(), original.size());
  EXPECT_EQ(restored.points_per_rep(), original.points_per_rep());
  EXPECT_TRUE(
      testutil::knn_equal(original.search(Q, 3), restored.search(Q, 3)));
}

TEST(Serialize, RangeSearchSurvivesRoundTrip) {
  const Matrix<float> X = testutil::clustered_matrix(400, 7, 4, 7);
  RbcExactIndex<> original;
  original.build(X, {.num_reps = 16, .seed = 8});
  std::stringstream stream;
  original.save(stream);
  const RbcExactIndex<> restored = RbcExactIndex<>::load(stream);
  const Matrix<float> Q = testutil::random_matrix(5, 7, 9, -6.0f, 6.0f);
  for (index_t qi = 0; qi < Q.rows(); ++qi)
    EXPECT_EQ(original.range_search(Q.row(qi), 1.5f),
              restored.range_search(Q.row(qi), 1.5f));
}

TEST(Serialize, RejectsWrongMagic) {
  std::stringstream stream;
  const std::uint32_t bogus = 0xDEADBEEF;
  stream.write(reinterpret_cast<const char*>(&bogus), sizeof(bogus));
  EXPECT_THROW((void)RbcExactIndex<>::load(stream), std::runtime_error);
}

TEST(Serialize, RejectsWrongIndexKind) {
  // A one-shot file must not load as an exact index.
  const Matrix<float> X = testutil::random_matrix(100, 5, 10);
  RbcOneShotIndex<> oneshot;
  oneshot.build(X, {.num_reps = 8, .seed = 11});
  std::stringstream stream;
  oneshot.save(stream);
  EXPECT_THROW((void)RbcExactIndex<>::load(stream), std::runtime_error);
}

TEST(Serialize, RejectsWrongMetric) {
  const Matrix<float> X = testutil::random_matrix(100, 5, 12);
  RbcExactIndex<L1> l1_index;
  l1_index.build(X, {.num_reps = 8, .seed = 13}, L1{});
  std::stringstream stream;
  l1_index.save(stream);
  EXPECT_THROW((void)RbcExactIndex<Euclidean>::load(stream),
               std::runtime_error);
}

TEST(Serialize, RejectsTruncatedStream) {
  const Matrix<float> X = testutil::random_matrix(200, 6, 14);
  RbcExactIndex<> index;
  index.build(X, {.num_reps = 10, .seed = 15});
  std::stringstream stream;
  index.save(stream);
  const std::string full = stream.str();
  std::stringstream truncated(full.substr(0, full.size() / 2));
  EXPECT_THROW((void)RbcExactIndex<>::load(truncated), std::runtime_error);
}

}  // namespace
}  // namespace rbc
