// Dynamic updates on the exact index: insert/erase/rebuild must keep every
// query exactly equal to brute force over the live point set.
#include <gtest/gtest.h>

#include <map>
#include <sstream>
#include <vector>

#include "rbc/rbc.hpp"
#include "test_util.hpp"

namespace rbc {
namespace {

/// Reference model: the live set as (id -> point) pairs.
class LiveSet {
 public:
  explicit LiveSet(const Matrix<float>& X) {
    for (index_t i = 0; i < X.rows(); ++i) {
      std::vector<float> row(X.row(i), X.row(i) + X.cols());
      points_.emplace(i, std::move(row));
    }
    dim_ = X.cols();
  }

  void insert(index_t id, const float* p) {
    points_.emplace(id, std::vector<float>(p, p + dim_));
  }
  void erase(index_t id) { points_.erase(id); }
  std::size_t size() const { return points_.size(); }

  /// Naive k-NN over the live set under the (distance, id) order.
  std::vector<std::pair<dist_t, index_t>> knn(const float* q,
                                              index_t k) const {
    const Euclidean m{};
    std::vector<std::pair<dist_t, index_t>> all;
    for (const auto& [id, row] : points_)
      all.emplace_back(m(q, row.data(), dim_), id);
    std::sort(all.begin(), all.end());
    if (all.size() > k) all.resize(k);
    return all;
  }

 private:
  std::map<index_t, std::vector<float>> points_;
  index_t dim_ = 0;
};

void expect_matches(const RbcExactIndex<>& index, const LiveSet& live,
                    const Matrix<float>& Q, index_t k, const char* what) {
  RbcExactIndex<>::Scratch scratch;
  TopK top(k);
  std::vector<dist_t> d(k);
  std::vector<index_t> ids(k);
  for (index_t qi = 0; qi < Q.rows(); ++qi) {
    top.reset();
    index.search_one(Q.row(qi), k, top, scratch);
    top.extract_sorted(d.data(), ids.data());
    const auto expected = live.knn(Q.row(qi), k);
    for (index_t j = 0; j < k; ++j) {
      if (j < expected.size()) {
        ASSERT_EQ(ids[j], expected[j].second)
            << what << ": query " << qi << " slot " << j;
        ASSERT_EQ(d[j], expected[j].first) << what << ": query " << qi;
      } else {
        ASSERT_EQ(ids[j], kInvalidIndex) << what;
      }
    }
  }
}

TEST(RbcDynamic, InsertedPointsAreFound) {
  const Matrix<float> X = testutil::clustered_matrix(500, 8, 5, 1);
  const Matrix<float> extra = testutil::clustered_matrix(100, 8, 5, 2);
  const Matrix<float> Q = testutil::random_matrix(25, 8, 3, -6.0f, 6.0f);

  RbcExactIndex<> index;
  index.build(X, {.num_reps = 20, .seed = 4});
  LiveSet live(X);

  for (index_t i = 0; i < extra.rows(); ++i) {
    const index_t id = index.insert(extra.row(i));
    EXPECT_EQ(id, 500u + i);  // ids continue past the build set
    live.insert(id, extra.row(i));
  }
  EXPECT_EQ(index.num_active(), 600u);
  EXPECT_EQ(index.overflow_size(), 100u);
  expect_matches(index, live, Q, 3, "after inserts");
}

TEST(RbcDynamic, ErasedPointsDisappear) {
  const Matrix<float> X = testutil::clustered_matrix(400, 7, 4, 5);
  const Matrix<float> Q = testutil::random_matrix(20, 7, 6, -6.0f, 6.0f);
  RbcExactIndex<> index;
  index.build(X, {.num_reps = 16, .seed = 7});
  LiveSet live(X);

  Rng rng(8);
  for (int e = 0; e < 150; ++e) {
    const index_t id = rng.uniform_index(400);
    const bool was_live = index.erase(id);
    if (was_live) live.erase(id);
  }
  EXPECT_EQ(index.num_active(), static_cast<index_t>(live.size()));
  expect_matches(index, live, Q, 4, "after erasures");
}

TEST(RbcDynamic, EraseSemantics) {
  const Matrix<float> X = testutil::random_matrix(50, 4, 9);
  RbcExactIndex<> index;
  index.build(X, {.num_reps = 7, .seed = 10});
  EXPECT_TRUE(index.erase(10));
  EXPECT_FALSE(index.erase(10));   // double erase
  EXPECT_FALSE(index.erase(999));  // unknown id
  EXPECT_EQ(index.num_active(), 49u);
}

TEST(RbcDynamic, ErasingARepresentativeKeepsSearchExact) {
  const Matrix<float> X = testutil::clustered_matrix(600, 9, 5, 11);
  const Matrix<float> Q = testutil::random_matrix(30, 9, 12, -6.0f, 6.0f);
  RbcExactIndex<> index;
  index.build(X, {.num_reps = 24, .seed = 13});
  LiveSet live(X);

  // Erase every representative's point: they remain routing points only.
  for (const index_t rep : index.rep_ids()) {
    EXPECT_TRUE(index.erase(rep));
    live.erase(rep);
  }
  expect_matches(index, live, Q, 3, "after erasing all reps");
}

TEST(RbcDynamic, InterleavedFuzz) {
  const Matrix<float> X = testutil::clustered_matrix(300, 6, 4, 14);
  const Matrix<float> Q = testutil::random_matrix(10, 6, 15, -6.0f, 6.0f);
  RbcExactIndex<> index;
  index.build(X, {.num_reps = 14, .seed = 16});
  LiveSet live(X);

  Rng rng(17);
  std::vector<index_t> ids_ever;
  for (index_t i = 0; i < 300; ++i) ids_ever.push_back(i);

  for (int round = 0; round < 12; ++round) {
    // A burst of random inserts and erases...
    for (int op = 0; op < 40; ++op) {
      if (rng.bernoulli(0.5)) {
        std::vector<float> p(6);
        for (auto& v : p) v = rng.uniform_float(-6.0f, 6.0f);
        const index_t id = index.insert(p.data());
        live.insert(id, p.data());
        ids_ever.push_back(id);
      } else {
        const index_t id =
            ids_ever[rng.uniform_index(static_cast<index_t>(ids_ever.size()))];
        if (index.erase(id)) live.erase(id);
      }
    }
    // ... then full verification.
    expect_matches(index, live, Q, 3, "interleaved round");
  }
}

TEST(RbcDynamic, RangeSearchSeesUpdates) {
  const Matrix<float> X = testutil::clustered_matrix(300, 6, 3, 18);
  RbcExactIndex<> index;
  index.build(X, {.num_reps = 12, .seed = 19});

  // Insert a point right on top of a query location.
  Matrix<float> q(1, 6);
  for (index_t j = 0; j < 6; ++j) q.at(0, j) = 50.0f;  // far from the data
  EXPECT_TRUE(index.range_search(q.row(0), 1.0f).empty());
  const index_t id = index.insert(q.row(0));
  EXPECT_EQ(index.range_search(q.row(0), 1.0f), std::vector<index_t>{id});
  index.erase(id);
  EXPECT_TRUE(index.range_search(q.row(0), 1.0f).empty());
}

TEST(RbcDynamic, RebuildCompactsAndRemaps) {
  const Matrix<float> X = testutil::clustered_matrix(400, 8, 5, 20);
  const Matrix<float> extra = testutil::clustered_matrix(80, 8, 5, 21);
  const Matrix<float> Q = testutil::random_matrix(20, 8, 22, -6.0f, 6.0f);

  RbcExactIndex<> index;
  index.build(X, {.num_reps = 16, .seed = 23});
  LiveSet live(X);
  for (index_t i = 0; i < extra.rows(); ++i)
    live.insert(index.insert(extra.row(i)), extra.row(i));
  Rng rng(24);
  for (int e = 0; e < 100; ++e) {
    const index_t id = rng.uniform_index(480);
    if (index.erase(id)) live.erase(id);
  }

  const index_t live_before = index.num_active();
  const std::vector<index_t> remap = index.rebuild();
  EXPECT_EQ(index.num_active(), live_before);
  EXPECT_EQ(index.overflow_size(), 0u);
  EXPECT_EQ(index.size(), live_before);

  // Verify: search results under new ids must equal reference results
  // mapped through the remap table.
  RbcExactIndex<>::Scratch scratch;
  TopK top(2);
  std::vector<dist_t> d(2);
  std::vector<index_t> ids(2);
  for (index_t qi = 0; qi < Q.rows(); ++qi) {
    top.reset();
    index.search_one(Q.row(qi), 2, top, scratch);
    top.extract_sorted(d.data(), ids.data());
    const auto expected = live.knn(Q.row(qi), 2);
    for (index_t j = 0; j < 2; ++j) {
      ASSERT_EQ(ids[j], remap[expected[j].second]) << "q" << qi;
      ASSERT_EQ(d[j], expected[j].first);
    }
  }
}

TEST(RbcDynamic, SerializationCarriesDynamicState) {
  const Matrix<float> X = testutil::clustered_matrix(300, 7, 4, 25);
  const Matrix<float> extra = testutil::clustered_matrix(50, 7, 4, 26);
  const Matrix<float> Q = testutil::random_matrix(15, 7, 27, -6.0f, 6.0f);

  RbcExactIndex<> index;
  index.build(X, {.num_reps = 13, .seed = 28});
  for (index_t i = 0; i < extra.rows(); ++i) index.insert(extra.row(i));
  index.erase(5);
  index.erase(310);

  std::stringstream stream;
  index.save(stream);
  const RbcExactIndex<> restored = RbcExactIndex<>::load(stream);
  EXPECT_EQ(restored.num_active(), index.num_active());
  EXPECT_EQ(restored.overflow_size(), index.overflow_size());
  EXPECT_TRUE(testutil::knn_equal(index.search(Q, 4), restored.search(Q, 4)));
}

TEST(RbcDynamic, PsiGrowsToCoverInserts) {
  const Matrix<float> X = testutil::random_matrix(200, 5, 29, 0.0f, 1.0f);
  RbcExactIndex<> index;
  index.build(X, {.num_reps = 10, .seed = 30});
  dist_t max_psi_before = 0;
  for (index_t r = 0; r < index.num_reps(); ++r)
    max_psi_before = std::max(max_psi_before, index.psi(r));

  // A far-away insert must stretch its owner's radius.
  Matrix<float> far(1, 5);
  for (index_t j = 0; j < 5; ++j) far.at(0, j) = 100.0f;
  index.insert(far.row(0));
  dist_t max_psi_after = 0;
  for (index_t r = 0; r < index.num_reps(); ++r)
    max_psi_after = std::max(max_psi_after, index.psi(r));
  EXPECT_GT(max_psi_after, max_psi_before + 50.0f);
}

}  // namespace
}  // namespace rbc
