// The exactness contract of the RBC exact-search algorithm: for every query,
// every dataset shape, every parameter combination and every metric, results
// equal brute force under the (distance, id) order — ties included.
#include <gtest/gtest.h>

#include <numeric>
#include <tuple>

#include "data/generators.hpp"
#include "rbc/rbc.hpp"
#include "test_util.hpp"

namespace rbc {
namespace {

// ---------------------------------------------------------------- build ---

TEST(RbcExactBuild, ListsPartitionTheDatabase) {
  const Matrix<float> X = testutil::clustered_matrix(500, 10, 6, 1);
  RbcExactIndex<> index;
  index.build(X, {.num_reps = 20, .seed = 42});

  std::vector<int> seen(X.rows(), 0);
  for (index_t r = 0; r < index.num_reps(); ++r)
    for (const index_t id : index.list_ids(r)) ++seen[id];
  for (index_t x = 0; x < X.rows(); ++x)
    EXPECT_EQ(seen[x], 1) << "point " << x << " not owned exactly once";
}

TEST(RbcExactBuild, EveryPointOwnedByItsNearestRepresentative) {
  const Matrix<float> X = testutil::clustered_matrix(300, 8, 4, 2);
  RbcExactIndex<> index;
  index.build(X, {.num_reps = 15, .seed = 7});

  const Euclidean m{};
  // Owner of x must be (one of) the nearest representative(s).
  for (index_t r = 0; r < index.num_reps(); ++r) {
    for (const index_t x : index.list_ids(r)) {
      const dist_t owner_dist = m(X.row(x), X.row(index.rep_ids()[r]), 8);
      for (index_t r2 = 0; r2 < index.num_reps(); ++r2) {
        const dist_t other = m(X.row(x), X.row(index.rep_ids()[r2]), 8);
        EXPECT_GE(other, owner_dist)
            << "point " << x << " closer to rep " << r2 << " than its owner";
      }
    }
  }
}

TEST(RbcExactBuild, ListsSortedAndPsiIsMaxMemberDistance) {
  const Matrix<float> X = testutil::clustered_matrix(400, 12, 5, 3);
  RbcExactIndex<> index;
  index.build(X, {.num_reps = 18, .seed = 11});

  for (index_t r = 0; r < index.num_reps(); ++r) {
    const auto dists = index.list_dists(r);
    for (std::size_t j = 1; j < dists.size(); ++j)
      EXPECT_LE(dists[j - 1], dists[j]) << "list " << r << " not sorted";
    const dist_t max_member =
        dists.empty() ? 0.0f : *std::max_element(dists.begin(), dists.end());
    EXPECT_EQ(index.psi(r), max_member);
  }
}

TEST(RbcExactBuild, AutoParamsChooseSqrtN) {
  const Matrix<float> X = testutil::random_matrix(400, 5, 4);
  RbcExactIndex<> index;
  index.build(X);  // num_reps = 0 -> ceil(sqrt(400)) = 20
  EXPECT_EQ(index.num_reps(), 20u);
}

TEST(RbcExactBuild, BernoulliSamplingBuildsWorkingIndex) {
  const Matrix<float> X = testutil::clustered_matrix(600, 9, 5, 5);
  RbcExactIndex<> index;
  index.build(X, {.num_reps = 25, .seed = 13, .sampling = Sampling::kBernoulli});
  EXPECT_GT(index.num_reps(), 0u);
  const Matrix<float> Q = testutil::random_matrix(20, 9, 6, -6.0f, 6.0f);
  EXPECT_TRUE(
      testutil::knn_equal(testutil::naive_knn(Q, X, 3), index.search(Q, 3)));
}

TEST(RbcExactBuild, DeterministicForFixedSeed) {
  const Matrix<float> X = testutil::clustered_matrix(300, 7, 4, 7);
  RbcExactIndex<> a, b;
  a.build(X, {.num_reps = 12, .seed = 99});
  b.build(X, {.num_reps = 12, .seed = 99});
  EXPECT_EQ(a.rep_ids(), b.rep_ids());
  for (index_t r = 0; r < a.num_reps(); ++r) {
    const auto la = a.list_ids(r), lb = b.list_ids(r);
    ASSERT_EQ(la.size(), lb.size());
    for (std::size_t j = 0; j < la.size(); ++j) EXPECT_EQ(la[j], lb[j]);
  }
}

// ----------------------------------------------- exactness property sweep ---

struct ExactCase {
  const char* name;
  index_t n, d, num_reps, k;
  bool clustered;
  bool duplicates;
};

class RbcExactProperty : public ::testing::TestWithParam<ExactCase> {};

TEST_P(RbcExactProperty, SearchEqualsBruteForce) {
  const ExactCase& c = GetParam();
  Matrix<float> X = c.clustered
                        ? testutil::clustered_matrix(c.n, c.d, 7, c.n + c.d)
                        : testutil::random_matrix(c.n, c.d, c.n + c.d);
  if (c.duplicates) X = testutil::with_duplicates(X, c.n / 4);
  const Matrix<float> Q = testutil::random_matrix(40, c.d, c.n, -6.0f, 6.0f);

  RbcExactIndex<> index;
  index.build(X, {.num_reps = c.num_reps, .seed = 1234});
  const KnnResult expected = testutil::naive_knn(Q, X, c.k);
  const KnnResult actual = index.search(Q, c.k);
  EXPECT_TRUE(testutil::knn_equal(expected, actual)) << c.name;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, RbcExactProperty,
    ::testing::Values(
        ExactCase{"tiny", 10, 3, 3, 1, false, false},
        ExactCase{"single_rep", 200, 5, 1, 1, false, false},
        ExactCase{"all_reps", 100, 5, 100, 1, false, false},
        ExactCase{"uniform_k1", 800, 8, 28, 1, false, false},
        ExactCase{"uniform_k5", 800, 8, 28, 5, false, false},
        ExactCase{"clustered_k1", 1000, 12, 32, 1, true, false},
        ExactCase{"clustered_k10", 1000, 12, 32, 10, true, false},
        ExactCase{"duplicates_k3", 400, 6, 20, 3, true, true},
        ExactCase{"duplicates_k1", 400, 6, 20, 1, false, true},
        ExactCase{"high_dim", 500, 74, 22, 3, true, false},
        ExactCase{"low_dim", 1200, 2, 35, 4, true, false},
        ExactCase{"k_exceeds_n", 30, 4, 6, 50, false, false},
        ExactCase{"many_reps_few_points", 60, 5, 40, 2, true, false}),
    [](const auto& info) { return info.param.name; });

// ------------------------------------------------ pruning configurations ---

class RbcExactPruneFlags
    : public ::testing::TestWithParam<std::tuple<bool, bool, bool, bool>> {};

TEST_P(RbcExactPruneFlags, AllFlagCombinationsRemainExact) {
  const auto [overlap, lemma, early, annulus] = GetParam();
  const Matrix<float> X = testutil::clustered_matrix(900, 10, 6, 77);
  const Matrix<float> Q = testutil::random_matrix(30, 10, 78, -6.0f, 6.0f);

  RbcParams params;
  params.num_reps = 30;
  params.seed = 5;
  params.use_overlap_rule = overlap;
  params.use_lemma_rule = lemma;
  params.use_early_exit = early;
  params.use_annulus_bound = annulus;

  RbcExactIndex<> index;
  index.build(X, params);
  EXPECT_TRUE(
      testutil::knn_equal(testutil::naive_knn(Q, X, 3), index.search(Q, 3)));
}

INSTANTIATE_TEST_SUITE_P(Flags, RbcExactPruneFlags,
                         ::testing::Combine(::testing::Bool(),
                                            ::testing::Bool(),
                                            ::testing::Bool(),
                                            ::testing::Bool()));

// ------------------------------------------------------- other metrics ---

TEST(RbcExactMetrics, L1SearchEqualsBruteForce) {
  const Matrix<float> X = testutil::clustered_matrix(700, 9, 5, 31);
  const Matrix<float> Q = testutil::random_matrix(25, 9, 32, -6.0f, 6.0f);
  RbcExactIndex<L1> index;
  index.build(X, {.num_reps = 26, .seed = 3}, L1{});
  EXPECT_TRUE(testutil::knn_equal(testutil::naive_knn(Q, X, 4, L1{}),
                                  index.search(Q, 4)));
}

TEST(RbcExactMetrics, LInfSearchEqualsBruteForce) {
  const Matrix<float> X = testutil::clustered_matrix(700, 9, 5, 33);
  const Matrix<float> Q = testutil::random_matrix(25, 9, 34, -6.0f, 6.0f);
  RbcExactIndex<LInf> index;
  index.build(X, {.num_reps = 26, .seed = 3}, LInf{});
  EXPECT_TRUE(testutil::knn_equal(testutil::naive_knn(Q, X, 4, LInf{}),
                                  index.search(Q, 4)));
}

// ------------------------------------------------------------ statistics ---

TEST(RbcExactStats, PruningReducesWorkOnClusteredData) {
  const index_t n = 4'000;
  const Matrix<float> X = testutil::clustered_matrix(n, 16, 10, 55);
  const Matrix<float> Q = testutil::random_matrix(50, 16, 56, -6.0f, 6.0f);
  RbcExactIndex<> index;
  index.build(X, {.seed = 2});  // auto nr = ceil(sqrt(n))

  SearchStats stats;
  index.search(Q, 1, &stats);
  EXPECT_EQ(stats.queries, 50u);
  // Work must be far below brute force n per query; on clustered data the
  // RBC examines a small fraction of the database.
  EXPECT_LT(stats.dist_evals_per_query(), 0.5 * n);
  EXPECT_GT(stats.reps_pruned_overlap + stats.reps_pruned_lemma, 0u);
}

TEST(RbcExactStats, StatsAccumulateAcrossCalls) {
  const Matrix<float> X = testutil::clustered_matrix(500, 8, 5, 57);
  const Matrix<float> Q = testutil::random_matrix(10, 8, 58);
  RbcExactIndex<> index;
  index.build(X, {.num_reps = 20, .seed = 2});
  SearchStats stats;
  index.search(Q, 1, &stats);
  index.search(Q, 1, &stats);
  EXPECT_EQ(stats.queries, 20u);
}

TEST(RbcExactStats, EarlyExitSkipsPointsOnClusteredData) {
  // Early exit engages when the candidate bound is tight, which requires
  // in-distribution queries (held-out rows of the same clustered set).
  const auto [X, Q] =
      testutil::split_rows(testutil::clustered_matrix(3'040, 10, 8, 59), 3'000);
  RbcExactIndex<> index;
  index.build(X, {.seed = 4});
  SearchStats stats;
  index.search(Q, 1, &stats);
  EXPECT_GT(stats.points_skipped_early_exit, 0u);
}

TEST(RbcExactStats, AnnulusBoundSkipsWithoutChangingResults) {
  const Matrix<float> X = testutil::clustered_matrix(2'000, 10, 8, 61);
  const Matrix<float> Q = testutil::random_matrix(30, 10, 62, -6.0f, 6.0f);

  RbcParams with;
  with.seed = 4;
  with.use_annulus_bound = true;
  RbcExactIndex<> a, b;
  a.build(X, with);
  b.build(X, {.seed = 4});

  SearchStats stats_a, stats_b;
  const KnnResult ra = a.search(Q, 2, &stats_a);
  const KnnResult rb = b.search(Q, 2, &stats_b);
  EXPECT_TRUE(testutil::knn_equal(ra, rb));
  EXPECT_GT(stats_a.points_skipped_annulus, 0u);
  EXPECT_LE(stats_a.list_dist_evals, stats_b.list_dist_evals);
}

// -------------------------------------------------------- search scaling ---

TEST(RbcExactScaling, WorkGrowsSublinearlyInN) {
  // Theorem 1: expected examined points ~ c^3 n / nr; with nr = sqrt(n) the
  // per-query work is O(c^3 sqrt(n)). The bound is useful when the intrinsic
  // dimensionality (log2 c) is small, so use 3-dimensional cluster subspaces
  // in an 8-d ambient space. Work ratio between n and 4n must be far below 4
  // (the brute-force ratio); sqrt predicts 2.
  const index_t d = 8;
  double work[2];
  index_t sizes[2] = {2'000, 8'000};
  for (int round = 0; round < 2; ++round) {
    const auto [X, Q] = testutil::split_rows(
        data::make_subspace_clusters(sizes[round] + 60, d, 10,
                                     /*intrinsic_d=*/3, 0.02f, 63),
        sizes[round]);
    RbcExactIndex<> index;
    index.build(X, {.seed = 5});
    SearchStats stats;
    index.search(Q, 1, &stats);
    work[round] = stats.dist_evals_per_query();
  }
  EXPECT_LT(work[1] / work[0], 3.0)
      << "work should scale ~sqrt(n): " << work[0] << " -> " << work[1];
}

TEST(RbcExactEdge, EmptyQueryBatch) {
  const Matrix<float> X = testutil::random_matrix(50, 4, 65);
  RbcExactIndex<> index;
  index.build(X, {.num_reps = 7, .seed = 6});
  const Matrix<float> Q(0, 4);
  const KnnResult r = index.search(Q, 1);
  EXPECT_EQ(r.ids.rows(), 0u);
}

TEST(RbcExactEdge, SinglePointDatabase) {
  Matrix<float> X(1, 3);
  X.at(0, 0) = 1.0f;
  RbcExactIndex<> index;
  index.build(X, {.seed = 7});
  Matrix<float> Q(1, 3);
  Q.at(0, 1) = 2.0f;
  const KnnResult r = index.search(Q, 1);
  EXPECT_EQ(r.ids.at(0, 0), 0u);
}

TEST(RbcExactEdge, QueryEqualsDatabasePoint) {
  const Matrix<float> X = testutil::random_matrix(200, 6, 66);
  RbcExactIndex<> index;
  index.build(X, {.num_reps = 14, .seed = 8});
  Matrix<float> Q(1, 6);
  Q.copy_row_from(X, 123, 0);
  const KnnResult r = index.search(Q, 1);
  EXPECT_EQ(r.ids.at(0, 0), 123u);
  EXPECT_EQ(r.dists.at(0, 0), 0.0f);
}

TEST(RbcExactEdge, MemoryBytesPositiveAndPlausible) {
  const Matrix<float> X = testutil::random_matrix(1'000, 16, 67);
  RbcExactIndex<> index;
  index.build(X, {.seed = 9});
  // At least the packed copy of the database, at most a few multiples.
  const std::size_t raw = 1'000ull * index.dim() * sizeof(float);
  EXPECT_GT(index.memory_bytes(), raw);
  EXPECT_LT(index.memory_bytes(), 8 * raw);
}

}  // namespace
}  // namespace rbc
