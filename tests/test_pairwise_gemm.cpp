#include <gtest/gtest.h>

#include "distance/kernels.hpp"
#include "distance/pairwise.hpp"
#include "distance/pairwise_gemm.hpp"
#include "test_util.hpp"

namespace rbc {
namespace {

TEST(PairwiseGemm, MatchesDirectComputationWithinRounding) {
  const Matrix<float> Q = testutil::random_matrix(40, 21, 1);
  const Matrix<float> X = testutil::random_matrix(70, 21, 2);
  const Matrix<float> direct = pairwise_all(Q, X, SqEuclidean{});
  const Matrix<float> gemm = pairwise_sq_l2_gemm(Q, X);
  ASSERT_EQ(gemm.rows(), 40u);
  ASSERT_EQ(gemm.cols(), 70u);
  for (index_t i = 0; i < Q.rows(); ++i)
    for (index_t j = 0; j < X.rows(); ++j) {
      // The expansion subtracts large similar numbers; relative tolerance
      // scales with the norms involved.
      const float scale = std::max(1.0f, direct.at(i, j));
      EXPECT_NEAR(gemm.at(i, j), direct.at(i, j), 1e-3f * scale + 1e-3f)
          << i << "," << j;
    }
}

TEST(PairwiseGemm, NonNegativeEvenForIdenticalRows) {
  // The expansion can go negative by rounding exactly where distances are
  // 0; the implementation clamps.
  const Matrix<float> base = testutil::random_matrix(30, 16, 3, 5.0f, 10.0f);
  const Matrix<float> X = testutil::with_duplicates(base, 30);
  const Matrix<float> D = pairwise_sq_l2_gemm(X, X);
  for (index_t i = 0; i < X.rows(); ++i)
    for (index_t j = 0; j < X.rows(); ++j)
      EXPECT_GE(D.at(i, j), 0.0f);
  for (index_t i = 0; i < 30; ++i)
    EXPECT_LT(D.at(i, i + 30), 1e-3f);  // duplicates ~ distance 0
}

TEST(PairwiseGemm, RowNormsMatchDotKernel) {
  const Matrix<float> A = testutil::random_matrix(25, 54, 4);
  const std::vector<float> norms = row_sq_norms(A);
  ASSERT_EQ(norms.size(), 25u);
  for (index_t i = 0; i < A.rows(); ++i)
    EXPECT_EQ(norms[i], kernels::dot(A.row(i), A.row(i), 54));
}

TEST(PairwiseGemm, NearestNeighborOrderingAgreesWithDirect) {
  // The use case: argmin over a row must pick the same neighbor as the
  // direct computation (up to rounding-induced ties, resolved identically
  // by index order).
  const Matrix<float> Q = testutil::random_matrix(20, 32, 5);
  const Matrix<float> X = testutil::clustered_matrix(500, 32, 6, 6);
  const Matrix<float> direct = pairwise_all(Q, X, SqEuclidean{});
  const Matrix<float> gemm = pairwise_sq_l2_gemm(Q, X);
  for (index_t i = 0; i < Q.rows(); ++i) {
    index_t best_direct = 0, best_gemm = 0;
    for (index_t j = 1; j < X.rows(); ++j) {
      if (direct.at(i, j) < direct.at(i, best_direct)) best_direct = j;
      if (gemm.at(i, j) < gemm.at(i, best_gemm)) best_gemm = j;
    }
    // Allow disagreement only when the two candidates are equidistant to
    // within the expansion's rounding.
    const float d1 = direct.at(i, best_direct);
    const float d2 = direct.at(i, best_gemm);
    EXPECT_NEAR(d1, d2, 1e-3f * std::max(1.0f, d1));
  }
}

TEST(PairwiseGemm, CountsWork) {
  const Matrix<float> Q = testutil::random_matrix(8, 10, 7);
  const Matrix<float> X = testutil::random_matrix(12, 10, 8);
  counters::Scope scope;
  pairwise_sq_l2_gemm(Q, X);
  EXPECT_EQ(scope.delta(), 96u);
}

}  // namespace
}  // namespace rbc
