// (1+eps)-approximate exact search (paper §5 footnote 1): the returned j-th
// distance must be within (1+eps) of the true j-th distance, eps = 0 must be
// the exact algorithm, and larger eps must not increase work.
#include <gtest/gtest.h>

#include "rbc/rbc.hpp"
#include "test_util.hpp"

namespace rbc {
namespace {

class ApproxEpsTest : public ::testing::TestWithParam<float> {};

TEST_P(ApproxEpsTest, ReturnedDistancesWithinFactor) {
  const float eps = GetParam();
  const auto [X, Q] =
      testutil::split_rows(testutil::clustered_matrix(2'030, 10, 7, 1), 2'000);

  RbcParams params;
  params.seed = 2;
  params.approx_eps = eps;
  RbcExactIndex<> index;
  index.build(X, params);

  const index_t k = 5;
  const KnnResult truth = testutil::naive_knn(Q, X, k);
  const KnnResult approx = index.search(Q, k);

  for (index_t qi = 0; qi < Q.rows(); ++qi)
    for (index_t j = 0; j < k; ++j) {
      const dist_t true_d = truth.dists.at(qi, j);
      const dist_t got_d = approx.dists.at(qi, j);
      // Small float slack on top of the guarantee factor.
      EXPECT_LE(got_d, (1.0f + eps) * true_d * (1.0f + 1e-5f) + 1e-6f)
          << "q" << qi << " slot " << j << " eps " << eps;
      EXPECT_GE(got_d, true_d * (1.0f - 1e-5f))  // can never beat the truth
          << "q" << qi << " slot " << j;
    }
}

INSTANTIATE_TEST_SUITE_P(Eps, ApproxEpsTest,
                         ::testing::Values(0.0f, 0.05f, 0.2f, 0.5f, 1.0f,
                                           4.0f),
                         [](const auto& info) {
                           std::string s = std::to_string(info.param);
                           for (auto& c : s)
                             if (c == '.') c = '_';
                           return "eps" + s;
                         });

TEST(RbcApprox, EpsZeroIsExactlyTheExactAlgorithm) {
  const auto [X, Q] =
      testutil::split_rows(testutil::clustered_matrix(1'030, 9, 5, 3), 1'000);
  RbcParams exact_params;
  exact_params.seed = 4;
  RbcParams zero_eps = exact_params;
  zero_eps.approx_eps = 0.0f;

  RbcExactIndex<> a, b;
  a.build(X, exact_params);
  b.build(X, zero_eps);
  EXPECT_TRUE(testutil::knn_equal(a.search(Q, 3), b.search(Q, 3)));
}

TEST(RbcApprox, WorkDecreasesMonotonicallyWithEps) {
  const auto [X, Q] =
      testutil::split_rows(testutil::clustered_matrix(4'050, 12, 8, 5), 4'000);

  std::uint64_t previous = ~0ull;
  for (const float eps : {0.0f, 0.2f, 1.0f, 4.0f}) {
    RbcParams params;
    params.seed = 6;
    params.approx_eps = eps;
    RbcExactIndex<> index;
    index.build(X, params);
    SearchStats stats;
    (void)index.search(Q, 1, &stats);
    EXPECT_LE(stats.dist_evals(), previous) << "eps " << eps;
    previous = stats.dist_evals();
  }
}

TEST(RbcApprox, LargeEpsStillReturnsPlausibleNeighbors) {
  // Even with a huge eps the search must return *some* k neighbors whose
  // distances are bounded by the guarantee (and padding only when k > n).
  const auto [X, Q] =
      testutil::split_rows(testutil::clustered_matrix(530, 8, 4, 7), 500);
  RbcParams params;
  params.seed = 8;
  params.approx_eps = 100.0f;
  RbcExactIndex<> index;
  index.build(X, params);
  const KnnResult r = index.search(Q, 3);
  const KnnResult truth = testutil::naive_knn(Q, X, 3);
  for (index_t qi = 0; qi < Q.rows(); ++qi)
    for (index_t j = 0; j < 3; ++j) {
      EXPECT_NE(r.ids.at(qi, j), kInvalidIndex);
      EXPECT_LE(r.dists.at(qi, j), 101.0f * truth.dists.at(qi, j) + 1e-5f);
    }
}

TEST(RbcApprox, ApproxComposesWithAnnulusBound) {
  const auto [X, Q] =
      testutil::split_rows(testutil::clustered_matrix(2'030, 10, 6, 9), 2'000);
  RbcParams params;
  params.seed = 10;
  params.approx_eps = 0.3f;
  params.use_annulus_bound = true;
  RbcExactIndex<> index;
  index.build(X, params);
  const KnnResult truth = testutil::naive_knn(Q, X, 2);
  const KnnResult got = index.search(Q, 2);
  for (index_t qi = 0; qi < Q.rows(); ++qi)
    for (index_t j = 0; j < 2; ++j)
      EXPECT_LE(got.dists.at(qi, j),
                1.3f * truth.dists.at(qi, j) * (1.0f + 1e-5f) + 1e-6f);
}

}  // namespace
}  // namespace rbc
