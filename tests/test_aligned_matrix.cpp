#include <gtest/gtest.h>

#include <cstdint>
#include <utility>

#include "common/aligned.hpp"
#include "common/matrix.hpp"

namespace rbc {
namespace {

TEST(AlignedBuffer, AlignmentIs64Bytes) {
  for (const std::size_t count : {1u, 7u, 64u, 1000u}) {
    AlignedBuffer<float> buf(count);
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(buf.data()) % kAlignment, 0u);
    EXPECT_EQ(buf.size(), count);
  }
}

TEST(AlignedBuffer, ZeroInitOption) {
  AlignedBuffer<float> buf(257, /*zero=*/true);
  for (const float v : buf) EXPECT_EQ(v, 0.0f);
}

TEST(AlignedBuffer, EmptyBuffer) {
  AlignedBuffer<double> buf;
  EXPECT_TRUE(buf.empty());
  EXPECT_EQ(buf.data(), nullptr);
  AlignedBuffer<double> sized(0);
  EXPECT_TRUE(sized.empty());
}

TEST(AlignedBuffer, MoveTransfersOwnership) {
  AlignedBuffer<int> a(16);
  a[3] = 42;
  int* raw = a.data();
  AlignedBuffer<int> b(std::move(a));
  EXPECT_EQ(b.data(), raw);
  EXPECT_EQ(b[3], 42);
  EXPECT_EQ(a.data(), nullptr);  // NOLINT(bugprone-use-after-move): testing it
  AlignedBuffer<int> c;
  c = std::move(b);
  EXPECT_EQ(c.data(), raw);
  EXPECT_EQ(c[3], 42);
}

TEST(Matrix, StridePaddingIsMultipleOf16) {
  for (const index_t cols : {1u, 15u, 16u, 17u, 54u, 74u, 128u}) {
    Matrix<float> m(3, cols);
    EXPECT_EQ(m.stride() % 16, 0u);
    EXPECT_GE(m.stride(), cols);
    EXPECT_LT(m.stride(), cols + 16);
  }
}

TEST(Matrix, PaddingLanesAreZero) {
  Matrix<float> m(4, 21);
  for (index_t i = 0; i < m.rows(); ++i)
    for (index_t j = 0; j < m.cols(); ++j) m.at(i, j) = 7.0f;
  for (index_t i = 0; i < m.rows(); ++i)
    for (index_t j = m.cols(); j < m.stride(); ++j)
      EXPECT_EQ(m.row(i)[j], 0.0f) << "row " << i << " pad lane " << j;
}

TEST(Matrix, RowsAreAligned) {
  Matrix<float> m(5, 74);
  for (index_t i = 0; i < m.rows(); ++i)
    EXPECT_EQ(reinterpret_cast<std::uintptr_t>(m.row(i)) % kAlignment, 0u);
}

TEST(Matrix, RowSpanHasLogicalLength) {
  Matrix<float> m(2, 21);
  EXPECT_EQ(m.row_span(0).size(), 21u);
  EXPECT_EQ(m.row_span(1).size(), 21u);
}

TEST(Matrix, CopyRowFromPreservesPadding) {
  Matrix<float> src(2, 10);
  for (index_t j = 0; j < 10; ++j) src.at(0, j) = static_cast<float>(j);
  Matrix<float> dst(2, 10);
  dst.copy_row_from(src, 0, 1);
  for (index_t j = 0; j < 10; ++j) EXPECT_EQ(dst.at(1, j), static_cast<float>(j));
  for (index_t j = 10; j < dst.stride(); ++j) EXPECT_EQ(dst.row(1)[j], 0.0f);
}

TEST(Matrix, CloneIsDeep) {
  Matrix<float> a(2, 3);
  a.at(0, 0) = 1.0f;
  Matrix<float> b = a.clone();
  b.at(0, 0) = 2.0f;
  EXPECT_EQ(a.at(0, 0), 1.0f);
  EXPECT_EQ(b.at(0, 0), 2.0f);
}

TEST(Matrix, EmptyMatrix) {
  Matrix<float> m;
  EXPECT_TRUE(m.empty());
  EXPECT_EQ(m.rows(), 0u);
  Matrix<float> zero_rows(0, 5);
  EXPECT_TRUE(zero_rows.empty());
  EXPECT_EQ(zero_rows.cols(), 5u);
}

}  // namespace
}  // namespace rbc
