#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

#include "simt/device.hpp"

namespace rbc::simt {
namespace {

TEST(Simt, LaunchCoversEveryBlockExactlyOnce) {
  Device device(2);
  const Dim3 grid{7, 3, 2};
  std::vector<std::atomic<int>> visits(grid.count());
  device.launch(grid, {4, 1, 1}, [&](Block& blk) {
    const std::uint64_t linear =
        blk.block_idx.x +
        static_cast<std::uint64_t>(grid.x) *
            (blk.block_idx.y + static_cast<std::uint64_t>(grid.y) * blk.block_idx.z);
    visits[linear].fetch_add(1);
    EXPECT_LT(blk.block_idx.x, grid.x);
    EXPECT_LT(blk.block_idx.y, grid.y);
    EXPECT_LT(blk.block_idx.z, grid.z);
  });
  for (const auto& v : visits) EXPECT_EQ(v.load(), 1);
}

TEST(Simt, ThreadsPhaseRunsEveryThread) {
  Device device(1);
  std::atomic<int> total{0};
  device.launch({2, 1, 1}, {16, 1, 1}, [&](Block& blk) {
    blk.threads([&](std::uint32_t tid) {
      EXPECT_LT(tid, 16u);
      total.fetch_add(1);
    });
  });
  EXPECT_EQ(total.load(), 32);
}

TEST(Simt, SharedMemoryPersistsAcrossPhases) {
  // Block-level tree reduction: the canonical shared-memory pattern.
  Device device(2);
  const std::uint32_t threads = 64;
  std::vector<long> results(8, 0);
  long* out = results.data();
  device.launch({8, 1, 1}, {threads, 1, 1}, [out, threads](Block& blk) {
    auto partial = blk.shared<long>(threads);
    // Phase 1: each thread contributes its id + block offset.
    blk.threads([&](std::uint32_t t) {
      partial[t] = static_cast<long>(t) + blk.block_idx.x;
    });
    // Phases 2..log2(T): inverted binary tree.
    for (std::uint32_t stride = threads / 2; stride > 0; stride /= 2) {
      blk.threads([&](std::uint32_t t) {
        if (t < stride) partial[t] += partial[t + stride];
      });
    }
    blk.threads([&](std::uint32_t t) {
      if (t == 0) out[blk.block_idx.x] = partial[0];
    });
  });
  const long base = 63 * 64 / 2;  // sum of thread ids
  for (int b = 0; b < 8; ++b) EXPECT_EQ(results[b], base + 64L * b);
}

TEST(Simt, SharedArenaResetsBetweenBlocks) {
  Device device(1);  // single worker: blocks reuse the same arena
  std::vector<int> firsts(4, -1);
  int* out = firsts.data();
  device.launch({4, 1, 1}, {1, 1, 1}, [out](Block& blk) {
    auto mem = blk.shared<int>(8);
    // Arena memory may hold stale bytes; a fresh allocation must start at
    // the arena base every block (same pointer, full capacity available).
    mem[0] = static_cast<int>(blk.block_idx.x);
    auto more = blk.shared<int>(8);
    more[0] = 100;
    out[blk.block_idx.x] = mem[0];
  });
  for (int b = 0; b < 4; ++b) EXPECT_EQ(firsts[b], b);
}

TEST(Simt, StatsCountLaunchesAndBlocks) {
  Device device(2);
  device.reset_stats();
  device.launch({5, 2, 1}, {8, 1, 1}, [](Block&) {});
  device.launch({3, 1, 1}, {8, 1, 1}, [](Block&) {});
  EXPECT_EQ(device.stats().kernels_launched, 2u);
  EXPECT_EQ(device.stats().blocks_executed, 13u);
}

TEST(Simt, DeviceBufferRoundTripAndMetering) {
  Device device(1);
  device.reset_stats();
  DeviceBuffer<float> buf(device, 256);
  EXPECT_EQ(device.stats().bytes_allocated, 256 * sizeof(float));

  std::vector<float> host(256);
  std::iota(host.begin(), host.end(), 0.0f);
  buf.upload(host);
  EXPECT_EQ(device.stats().bytes_h2d, 256 * sizeof(float));

  std::vector<float> back(256, -1.0f);
  buf.download(back);
  EXPECT_EQ(device.stats().bytes_d2h, 256 * sizeof(float));
  EXPECT_EQ(back, host);
}

TEST(Simt, WorkerCountDefaultsPositive) {
  Device device;
  EXPECT_GE(device.workers(), 1);
  Device two(2);
  EXPECT_EQ(two.workers(), 2);
}

TEST(Simt, KernelsSeeGridAndBlockDims) {
  Device device(1);
  device.launch({3, 2, 1}, {8, 2, 1}, [](Block& blk) {
    EXPECT_EQ(blk.grid_dim.x, 3u);
    EXPECT_EQ(blk.grid_dim.y, 2u);
    EXPECT_EQ(blk.block_dim.x, 8u);
    EXPECT_EQ(blk.num_threads(), 16u);
  });
}

}  // namespace
}  // namespace rbc::simt
