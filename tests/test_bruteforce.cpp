// The brute-force primitive against a naive reference: exact equality of
// (distance, id) results, including ties, across batch/stream modes, metrics
// and edge cases.
#include <gtest/gtest.h>

#include <tuple>

#include "bruteforce/bf.hpp"
#include "parallel/runtime.hpp"
#include "test_util.hpp"

namespace rbc {
namespace {

class BfShapeTest
    : public ::testing::TestWithParam<std::tuple<index_t, index_t, index_t>> {
 protected:
  index_t n() const { return std::get<0>(GetParam()); }
  index_t d() const { return std::get<1>(GetParam()); }
  index_t k() const { return std::get<2>(GetParam()); }
};

TEST_P(BfShapeTest, MatchesNaiveReference) {
  const Matrix<float> X = testutil::clustered_matrix(n(), d(), 5, 1);
  const Matrix<float> Q = testutil::random_matrix(33, d(), 2, -6.0f, 6.0f);
  const KnnResult expected = testutil::naive_knn(Q, X, k());
  const KnnResult actual = bf_knn(Q, X, k());
  EXPECT_TRUE(testutil::knn_equal(expected, actual));
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, BfShapeTest,
    ::testing::Combine(::testing::Values<index_t>(1, 2, 10, 257, 1000),
                       ::testing::Values<index_t>(1, 8, 21, 74),
                       ::testing::Values<index_t>(1, 3, 10)),
    [](const auto& info) {
      return "n" + std::to_string(std::get<0>(info.param)) + "_d" +
             std::to_string(std::get<1>(info.param)) + "_k" +
             std::to_string(std::get<2>(info.param));
    });

TEST(BruteForce, KLargerThanDatabasePads) {
  const Matrix<float> X = testutil::random_matrix(5, 4, 3);
  const Matrix<float> Q = testutil::random_matrix(7, 4, 4);
  const KnnResult r = bf_knn(Q, X, 9);
  for (index_t qi = 0; qi < Q.rows(); ++qi) {
    for (index_t j = 0; j < 5; ++j)
      EXPECT_NE(r.ids.at(qi, j), kInvalidIndex);
    for (index_t j = 5; j < 9; ++j) {
      EXPECT_EQ(r.ids.at(qi, j), kInvalidIndex);
      EXPECT_EQ(r.dists.at(qi, j), kInfDist);
    }
  }
}

TEST(BruteForce, DuplicatePointsTieByIdLikeReference) {
  const Matrix<float> base = testutil::random_matrix(40, 6, 5);
  const Matrix<float> X = testutil::with_duplicates(base, 40);  // every point twice
  const Matrix<float> Q = testutil::random_matrix(15, 6, 6);
  EXPECT_TRUE(testutil::knn_equal(testutil::naive_knn(Q, X, 4),
                                  bf_knn(Q, X, 4)));
}

TEST(BruteForce, StreamModeEqualsBatchMode) {
  const Matrix<float> X = testutil::clustered_matrix(2'000, 12, 4, 7);
  const Matrix<float> Q = testutil::random_matrix(5, 12, 8, -6.0f, 6.0f);
  const KnnResult batch = testutil::naive_knn(Q, X, 5);
  for (index_t qi = 0; qi < Q.rows(); ++qi) {
    TopK top(5);
    bf_knn_stream(Q.row(qi), X, Euclidean{}, top);
    std::vector<dist_t> d(5);
    std::vector<index_t> ids(5);
    top.extract_sorted(d.data(), ids.data());
    for (index_t j = 0; j < 5; ++j) {
      EXPECT_EQ(ids[j], batch.ids.at(qi, j));
      EXPECT_EQ(d[j], batch.dists.at(qi, j));
    }
  }
}

TEST(BruteForce, ResultsIndependentOfThreadCount) {
  const Matrix<float> X = testutil::clustered_matrix(1'500, 9, 6, 9);
  const Matrix<float> Q = testutil::random_matrix(64, 9, 10, -6.0f, 6.0f);
  KnnResult multi = bf_knn(Q, X, 3);
  ThreadLimit limit(1);
  KnnResult single = bf_knn(Q, X, 3);
  EXPECT_TRUE(testutil::knn_equal(multi, single));
}

TEST(BruteForce, SubsetScanHitsOnlySubset) {
  const Matrix<float> X = testutil::random_matrix(100, 7, 11);
  const Matrix<float> Q = testutil::random_matrix(1, 7, 12);
  const std::vector<index_t> subset = {3, 17, 42, 99};
  TopK top(2);
  bf_scan_subset(Q.row(0), X, subset.data(),
                 static_cast<index_t>(subset.size()), Euclidean{}, top);
  std::vector<dist_t> d(2);
  std::vector<index_t> ids(2);
  top.extract_sorted(d.data(), ids.data());
  for (index_t j = 0; j < 2; ++j)
    EXPECT_TRUE(std::find(subset.begin(), subset.end(), ids[j]) !=
                subset.end());
}

TEST(BruteForce, L1MetricMatchesReference) {
  const Matrix<float> X = testutil::random_matrix(300, 11, 13);
  const Matrix<float> Q = testutil::random_matrix(20, 11, 14);
  EXPECT_TRUE(testutil::knn_equal(testutil::naive_knn(Q, X, 4, L1{}),
                                  bf_knn(Q, X, 4, L1{})));
}

TEST(BruteForce, LInfMetricMatchesReference) {
  const Matrix<float> X = testutil::random_matrix(300, 11, 15);
  const Matrix<float> Q = testutil::random_matrix(20, 11, 16);
  EXPECT_TRUE(testutil::knn_equal(testutil::naive_knn(Q, X, 4, LInf{}),
                                  bf_knn(Q, X, 4, LInf{})));
}

TEST(BruteForce, SqEuclideanOrderingMatchesEuclidean) {
  const Matrix<float> X = testutil::random_matrix(400, 10, 17);
  const Matrix<float> Q = testutil::random_matrix(25, 10, 18);
  const KnnResult sq = bf_knn(Q, X, 5, SqEuclidean{});
  const KnnResult l2 = bf_knn(Q, X, 5, Euclidean{});
  for (index_t qi = 0; qi < Q.rows(); ++qi)
    for (index_t j = 0; j < 5; ++j)
      EXPECT_EQ(sq.ids.at(qi, j), l2.ids.at(qi, j));
}

TEST(BruteForce, EmptyQueryBatch) {
  const Matrix<float> X = testutil::random_matrix(10, 4, 19);
  const Matrix<float> Q(0, 4);
  const KnnResult r = bf_knn(Q, X, 2);
  EXPECT_EQ(r.ids.rows(), 0u);
}

TEST(BruteForce, Bf1nnConvenience) {
  const Matrix<float> X = testutil::random_matrix(200, 8, 20);
  const Matrix<float> Q = testutil::random_matrix(1, 8, 21);
  const auto [d, id] = bf_1nn(Q.row(0), X);
  const KnnResult expected = testutil::naive_knn(Q, X, 1);
  EXPECT_EQ(id, expected.ids.at(0, 0));
  EXPECT_EQ(d, expected.dists.at(0, 0));
}

TEST(BruteForce, CountsDistanceEvaluations) {
  const Matrix<float> X = testutil::random_matrix(123, 5, 22);
  const Matrix<float> Q = testutil::random_matrix(45, 5, 23);
  counters::Scope scope;
  bf_knn(Q, X, 1);
  EXPECT_EQ(scope.delta(), 123u * 45u);
}

}  // namespace
}  // namespace rbc
