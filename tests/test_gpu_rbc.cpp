// The device one-shot RBC must return exactly what the host one-shot index
// returns (same algorithm, same (distance, id) order).
#include <gtest/gtest.h>

#include "gpu/gpu_rbc.hpp"
#include "test_util.hpp"

namespace rbc::gpu {
namespace {

TEST(GpuRbc, MatchesHostOneShotExactly) {
  const Matrix<float> X = testutil::clustered_matrix(900, 10, 6, 1);
  const Matrix<float> Q = testutil::random_matrix(40, 10, 2, -6.0f, 6.0f);

  RbcOneShotIndex<Euclidean> host_index;
  host_index.build(X, {.num_reps = 30, .points_per_rep = 45, .seed = 3});

  simt::Device device(2);
  const GpuRbcOneShot device_index(device, host_index);
  const GpuMatrix gq = upload_matrix(device, Q);

  const KnnResult host_result = host_index.search(Q, 5);
  const KnnResult device_result = device_index.search(gq, 5);
  EXPECT_TRUE(testutil::knn_equal(host_result, device_result));
}

TEST(GpuRbc, OneNearestNeighborPath) {
  const Matrix<float> X = testutil::clustered_matrix(500, 21, 5, 4);
  const Matrix<float> Q = testutil::random_matrix(25, 21, 5, -6.0f, 6.0f);

  RbcOneShotIndex<Euclidean> host_index;
  host_index.build(X, {.num_reps = 22, .points_per_rep = 22, .seed = 6});

  simt::Device device(2);
  const GpuRbcOneShot device_index(device, host_index);
  const GpuMatrix gq = upload_matrix(device, Q);
  EXPECT_TRUE(testutil::knn_equal(host_index.search(Q, 1),
                                  device_index.search(gq, 1)));
}

TEST(GpuRbc, IndexUploadIsMetered) {
  const Matrix<float> X = testutil::random_matrix(400, 8, 7);
  RbcOneShotIndex<Euclidean> host_index;
  host_index.build(X, {.num_reps = 20, .points_per_rep = 25, .seed = 8});

  simt::Device device(1);
  device.reset_stats();
  const GpuRbcOneShot device_index(device, host_index);
  // reps (20 rows) + packed (500 rows) + ids (500) must all be on-device.
  EXPECT_GT(device.stats().bytes_h2d,
            500ull * 8 * sizeof(float));
  EXPECT_EQ(device_index.num_reps(), 20u);
  EXPECT_EQ(device_index.points_per_rep(), 25u);
}

TEST(GpuRbc, SearchLaunchesTwoKernels) {
  const Matrix<float> X = testutil::random_matrix(300, 6, 9);
  RbcOneShotIndex<Euclidean> host_index;
  host_index.build(X, {.num_reps = 15, .seed = 10});

  simt::Device device(2);
  const GpuRbcOneShot device_index(device, host_index);
  const Matrix<float> Q = testutil::random_matrix(12, 6, 11);
  const GpuMatrix gq = upload_matrix(device, Q);

  device.reset_stats();
  device_index.search(gq, 2);
  EXPECT_EQ(device.stats().kernels_launched, 2u);      // BF(Q,R), BF(q,L_r)
  EXPECT_EQ(device.stats().blocks_executed, 2u * 12u);  // one block/query each
}

TEST(GpuRbc, AgreesAcrossBlockWidths) {
  const Matrix<float> X = testutil::clustered_matrix(600, 9, 5, 12);
  RbcOneShotIndex<Euclidean> host_index;
  host_index.build(X, {.num_reps = 24, .points_per_rep = 36, .seed = 13});
  simt::Device device(2);
  const GpuRbcOneShot device_index(device, host_index);
  const Matrix<float> Q = testutil::random_matrix(10, 9, 14, -6.0f, 6.0f);
  const GpuMatrix gq = upload_matrix(device, Q);
  EXPECT_TRUE(testutil::knn_equal(device_index.search(gq, 3, 1),
                                  device_index.search(gq, 3, 64)));
}

}  // namespace
}  // namespace rbc::gpu
