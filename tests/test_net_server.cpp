// End-to-end tests of the network serving subsystem (serve/net/ +
// dist/net_router) over real loopback sockets:
//   * client answers are bit-identical to direct Index::knn_search;
//   * malformed frames, oversized frames and bad requests get error frames
//     without killing the server;
//   * admission control rejects with retry_after under overload;
//   * stalled connections are closed by the read timeout;
//   * a kReloadRequest hot-swaps the index with zero downtime under load;
//   * graceful drain via the async-signal-safe stop_fd;
//   * a NetRouter over TWO real shard-owner server processes returns
//     bit-identical results (ids, dists, tie order) to the in-process
//     sharded:<inner> composite over the same partition.
//
// The multi-process test re-executes this binary with --net-shard-worker
// (fork + immediate execv of /proc/self/exe, which is safe from a threaded
// parent), so this TU defines its own main() instead of gtest_main's.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <netinet/in.h>
#include <string>
#include <sys/socket.h>
#include <sys/wait.h>
#include <thread>
#include <unistd.h>
#include <vector>

#include "api/api.hpp"
#include "dist/net_router.hpp"
#include "metricspace/dataset.hpp"
#include "serve/net/client.hpp"
#include "serve/net/server.hpp"
#include "shard/sharded_index.hpp"
#include "test_util.hpp"

namespace rbc {
namespace {

using serve::SearchService;
using serve::net::ErrorCode;
using serve::net::InfoMsg;
using serve::net::RbcClient;
using serve::net::RbcServer;
using serve::net::RemoteError;
using serve::net::ServerOptions;

// ---------------------------------------------------------------- helpers --

constexpr index_t kDim = 8;

Matrix<float> test_database() {
  // Duplicated rows guarantee distance ties, so the parity checks cover the
  // (distance, id) tie-break path, not just the generic one.
  return testutil::with_duplicates(
      testutil::clustered_matrix(600, kDim, 5, 77), 60);
}

Matrix<float> test_queries(index_t nq = 32) {
  return testutil::clustered_matrix(nq, kDim, 5, 99);
}

/// Options shared by the in-process sharded reference and the shard-owner
/// worker processes: identical build inputs => identical built indices.
IndexOptions shard_options() {
  IndexOptions options;
  options.rbc.seed = 7;
  options.num_shards = 2;
  return options;
}

std::unique_ptr<Index> built_index(const std::string& backend) {
  auto index = make_index(backend, shard_options());
  index->build(test_database());
  return index;
}

void expect_same_knn(const KnnResult& a, const KnnResult& b) {
  ASSERT_EQ(a.ids.rows(), b.ids.rows());
  ASSERT_EQ(a.ids.cols(), b.ids.cols());
  for (index_t i = 0; i < a.ids.rows(); ++i)
    for (index_t j = 0; j < a.ids.cols(); ++j) {
      ASSERT_EQ(a.ids.at(i, j), b.ids.at(i, j)) << "query " << i << " slot "
                                                << j;
      ASSERT_EQ(a.dists.at(i, j), b.dists.at(i, j))
          << "query " << i << " slot " << j;
    }
}

/// Raw loopback socket for protocol-abuse tests (RbcClient refuses to send
/// malformed bytes).
int raw_connect(std::uint16_t port) {
  const int fd = socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  timeval tv{5, 0};
  setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof tv);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  EXPECT_EQ(connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr), 0)
      << std::strerror(errno);
  return fd;
}

bool read_exact(int fd, std::uint8_t* out, std::size_t n) {
  std::size_t got = 0;
  while (got < n) {
    const ssize_t r = recv(fd, out + got, n - got, 0);
    if (r <= 0) return false;
    got += static_cast<std::size_t>(r);
  }
  return true;
}

/// An exact index whose searches take at least `delay_ms`: makes admission-
/// control overload deterministic to provoke.
class DelayIndex final : public Index {
 public:
  DelayIndex(std::unique_ptr<Index> inner, int delay_ms)
      : inner_(std::move(inner)), delay_ms_(delay_ms) {}

  void build(const Matrix<float>& X) override { inner_->build(X); }
  SearchResponse knn_search(const SearchRequest& request) const override {
    std::this_thread::sleep_for(std::chrono::milliseconds(delay_ms_));
    return inner_->knn_search(request);
  }
  IndexInfo info() const override { return inner_->info(); }

 private:
  std::unique_ptr<Index> inner_;
  int delay_ms_;
};

// ------------------------------------------------------------------ tests --

TEST(NetServer, KnnAndRangeMatchDirectSearchBitwise) {
  auto index = built_index("bruteforce");
  const Matrix<float> queries = test_queries();
  const index_t k = 10;

  SearchRequest request{.queries = &queries, .k = k, .options = {}};
  const SearchResponse direct = index->knn_search(request);
  const dist_t radius = direct.knn.dists.at(0, k - 1);
  RangeRequest range_request{
      .queries = &queries, .radius = radius, .options = {}};
  const RangeResponse direct_range = index->range_search(range_request);

  RbcServer server(std::move(index));
  RbcClient client("127.0.0.1", server.port());

  const KnnResult over_wire = client.knn(queries, k);
  expect_same_knn(direct.knn, over_wire);
  EXPECT_EQ(client.range(queries, radius), direct_range.ids);

  const InfoMsg info = client.info();
  EXPECT_EQ(info.backend, "bruteforce");
  EXPECT_EQ(info.size, test_database().rows());
  EXPECT_EQ(info.dim, kDim);
  EXPECT_EQ(info.conn_requests, 2u);  // the knn + the range frame
  EXPECT_GT(info.conn_bytes_in, 0u);
  EXPECT_GT(info.conn_bytes_out, 0u);
}

TEST(NetServer, PayloadKnnOverWireMatchesDirectSearchBitwise) {
  // A string dictionary under "edit", served over loopback: wire answers
  // must be bit-identical to direct knn_search_payload, INFO must carry the
  // v3 cost tail, and a dense knn against the payload index must get a
  // clean kBadRequest without killing the connection.
  const std::vector<std::string> words = {"kitten", "sitting", "kitchen",
                                          "mitten", "sit",     "knitting",
                                          "fitting", "bitten"};
  auto data = metricspace::make_string_dataset(words);
  IndexOptions options;
  options.metric = "edit";
  auto index = make_index("rbc-exact", options);
  index->build_payload(data);

  const std::vector<std::string> queries = {"mitten", "sat", "splitting"};
  PayloadSearchRequest direct_request{
      .queries = &queries, .k = 3, .options = {}};
  const SearchResponse direct = index->knn_search_payload(direct_request);

  RbcServer server(std::move(index));
  RbcClient client("127.0.0.1", server.port());
  expect_same_knn(direct.knn, client.knn_payload(queries, 3));

  try {
    (void)client.knn(test_queries(1), 1);
    FAIL() << "dense knn on a payload index must be refused";
  } catch (const RemoteError& e) {
    EXPECT_EQ(e.code(), ErrorCode::kBadRequest);
  }

  const InfoMsg info = client.info();
  EXPECT_EQ(info.backend, "rbc-exact");
  EXPECT_EQ(info.metric, "edit");
  EXPECT_EQ(info.dim, 0u);
  EXPECT_EQ(info.size, words.size());
  EXPECT_EQ(info.cost_unit, "chars_compared");
  EXPECT_GT(info.metric_cost, 0u);

  // The reverse refusal: payload queries against a dense-built server.
  RbcServer dense_server(built_index("bruteforce"));
  RbcClient dense_client("127.0.0.1", dense_server.port());
  try {
    (void)dense_client.knn_payload(queries, 1);
    FAIL() << "payload knn on a dense index must be refused";
  } catch (const RemoteError& e) {
    EXPECT_EQ(e.code(), ErrorCode::kBadRequest);
  }
  EXPECT_EQ(dense_client.info().cost_unit, "");  // dense: no payload unit
}

TEST(NetServer, MixedVersionFramesInteropOnOneConnection) {
  // The server answers each frame under the frame's own version: a v1
  // request (what a pre-deadline client emits) gets a byte-layout-v1
  // response with no coverage trailer; a v2 request on the same connection
  // gets the trailer. No handshake, no connection state.
  auto index = built_index("bruteforce");
  const Matrix<float> queries = test_queries(4);
  const index_t k = 3;
  SearchRequest request{.queries = &queries, .k = k, .options = {}};
  const SearchResponse direct = index->knn_search(request);

  RbcServer server(std::move(index));
  const int fd = raw_connect(server.port());
  const auto exchange = [&](const std::vector<std::uint8_t>& frame) {
    EXPECT_GT(send(fd, frame.data(), frame.size(), MSG_NOSIGNAL), 0);
    std::uint8_t raw[serve::net::kHeaderSize];
    EXPECT_TRUE(read_exact(fd, raw, sizeof raw));
    const auto header = serve::net::parse_header({raw, sizeof raw});
    EXPECT_TRUE(header.has_value());
    std::vector<std::uint8_t> payload(header->payload_len);
    EXPECT_TRUE(read_exact(fd, payload.data(), payload.size()));
    return std::pair(*header, payload);
  };

  {  // v1 in, v1 out.
    const auto [header, payload] =
        exchange(serve::net::encode_knn_request(1, queries, k,
                                                /*deadline_ms=*/0,
                                                /*version=*/1));
    EXPECT_EQ(header.version, 1u);
    ASSERT_EQ(header.op, serve::net::Op::kKnnResponse);
    const auto msg = serve::net::decode_knn_response(payload, header.version);
    expect_same_knn(direct.knn, msg.result);
    EXPECT_TRUE(msg.coverage.full());
  }
  {  // v2 in (deadline riding along), v2 out (coverage trailer present).
    const auto [header, payload] =
        exchange(serve::net::encode_knn_request(2, queries, k,
                                                /*deadline_ms=*/60'000,
                                                /*version=*/2));
    EXPECT_EQ(header.version, 2u);
    ASSERT_EQ(header.op, serve::net::Op::kKnnResponse);
    const auto msg = serve::net::decode_knn_response(payload, header.version);
    expect_same_knn(direct.knn, msg.result);
    EXPECT_EQ(msg.coverage, (serve::net::Coverage{1, 1}));
  }
  close(fd);
}

TEST(NetServer, ExpiredDeadlineIsShedWithDeadlineExceeded) {
  auto slow = std::make_unique<DelayIndex>(built_index("bruteforce"),
                                           /*delay_ms=*/100);
  RbcServer server(std::move(slow));
  const Matrix<float> queries = test_queries(2);

  // A 1ms budget against a 100ms index: the server must shed the reply. A
  // raw socket observes the verdict — RbcClient would (correctly) give up
  // on its own 1ms budget before the server's error frame arrives.
  const int fd = raw_connect(server.port());
  const std::vector<std::uint8_t> frame =
      serve::net::encode_knn_request(1, queries, 3, /*deadline_ms=*/1);
  ASSERT_GT(send(fd, frame.data(), frame.size(), MSG_NOSIGNAL), 0);
  std::uint8_t raw[serve::net::kHeaderSize];
  ASSERT_TRUE(read_exact(fd, raw, sizeof raw));
  const auto header = serve::net::parse_header({raw, sizeof raw});
  ASSERT_TRUE(header.has_value());
  ASSERT_EQ(header->op, serve::net::Op::kError);
  std::vector<std::uint8_t> payload(header->payload_len);
  ASSERT_TRUE(read_exact(fd, payload.data(), payload.size()));
  EXPECT_EQ(serve::net::decode_error(payload).code,
            ErrorCode::kDeadlineExceeded);
  close(fd);
  EXPECT_GE(server.stats().deadline_exceeded, 1u);

  // A generous budget sails through, end to end via the client.
  RbcClient client("127.0.0.1", server.port());
  EXPECT_EQ(client.knn(queries, 3, /*deadline_ms=*/60'000).ids.rows(), 2u);
}

TEST(NetServer, BadRequestGetsErrorFrameAndConnectionSurvives) {
  RbcServer server(built_index("bruteforce"));
  RbcClient client("127.0.0.1", server.port());

  // k beyond the database: kBadRequest, connection stays usable.
  const Matrix<float> queries = test_queries(2);
  try {
    (void)client.knn(queries, 1'000'000);
    FAIL() << "expected RemoteError";
  } catch (const RemoteError& e) {
    EXPECT_EQ(e.code(), ErrorCode::kBadRequest);
  }

  // Wrong dimension: same deal.
  const Matrix<float> wrong_dim = testutil::random_matrix(2, kDim + 3, 5);
  try {
    (void)client.knn(wrong_dim, 3);
    FAIL() << "expected RemoteError";
  } catch (const RemoteError& e) {
    EXPECT_EQ(e.code(), ErrorCode::kBadRequest);
  }

  // The same connection still answers a valid request.
  EXPECT_EQ(client.knn(queries, 3).ids.rows(), 2u);
}

TEST(NetServer, MalformedAndOversizedFramesGetErrorThenCloseNotCrash) {
  RbcServer server(built_index("bruteforce"),
                   {.max_payload = 1u << 20});

  {  // Garbage bytes: an error frame comes back, then the connection closes.
    const int fd = raw_connect(server.port());
    const char garbage[] = "this is definitely not an RBCN frame.......";
    ASSERT_GT(send(fd, garbage, sizeof garbage, MSG_NOSIGNAL), 0);
    std::uint8_t reply[512];
    const ssize_t n = recv(fd, reply, sizeof reply, 0);
    ASSERT_GE(n, static_cast<ssize_t>(serve::net::kHeaderSize));
    const auto header = serve::net::parse_header(
        {reply, static_cast<std::size_t>(n)});
    ASSERT_TRUE(header.has_value());
    EXPECT_EQ(header->op, serve::net::Op::kError);
    EXPECT_EQ(recv(fd, reply, sizeof reply, 0), 0);  // closed after flush
    close(fd);
  }

  {  // A header claiming a payload over max_payload: same error-then-close.
    std::vector<std::uint8_t> header =
        serve::net::encode_frame(serve::net::Op::kKnnRequest, 9, {});
    const std::uint32_t huge = 64u << 20;
    std::memcpy(header.data() + 16, &huge, 4);
    const int fd = raw_connect(server.port());
    ASSERT_GT(send(fd, header.data(), header.size(), MSG_NOSIGNAL), 0);
    std::uint8_t reply[512];
    const ssize_t n = recv(fd, reply, sizeof reply, 0);
    ASSERT_GE(n, static_cast<ssize_t>(serve::net::kHeaderSize));
    close(fd);
  }

  // A knn request whose payload contradicts its own counts (truncated rows).
  {
    const Matrix<float> queries = test_queries(4);
    std::vector<std::uint8_t> frame =
        serve::net::encode_knn_request(1, queries, 2);
    // Shrink the payload but fix up payload_len so the frame is "complete":
    // the decoder, not the framer, must catch the count mismatch.
    frame.resize(frame.size() - 24);
    const auto len =
        static_cast<std::uint32_t>(frame.size() - serve::net::kHeaderSize);
    std::memcpy(frame.data() + 16, &len, 4);
    const int fd = raw_connect(server.port());
    ASSERT_GT(send(fd, frame.data(), frame.size(), MSG_NOSIGNAL), 0);
    std::uint8_t reply[512];
    const ssize_t n = recv(fd, reply, sizeof reply, 0);
    ASSERT_GE(n, static_cast<ssize_t>(serve::net::kHeaderSize));
    const auto header = serve::net::parse_header(
        {reply, static_cast<std::size_t>(n)});
    ASSERT_TRUE(header.has_value());
    EXPECT_EQ(header->op, serve::net::Op::kError);
    close(fd);
  }

  // After all that abuse the server still serves.
  RbcClient client("127.0.0.1", server.port());
  EXPECT_EQ(client.knn(test_queries(2), 3).ids.rows(), 2u);
  EXPECT_GE(server.stats().protocol_errors, 2u);
}

TEST(NetServer, ClientResetMidPipelineDoesNotCorruptServer) {
  // Regression: a fatal send error (peer RST -> ECONNRESET/EPIPE) while the
  // frame loop was still delivering replies used to close_conn() from inside
  // flush(), freeing the Connection the loop held by reference. Pipeline a
  // burst of requests and abort-close (SO_LINGER 0 sends RST) so the reset
  // races the replies; under ASan a regression is a hard failure.
  RbcServer server(built_index("bruteforce"));
  std::vector<std::uint8_t> burst;
  for (std::uint64_t id = 1; id <= 512; ++id) {
    const std::vector<std::uint8_t> frame =
        serve::net::encode_info_request(id);
    burst.insert(burst.end(), frame.begin(), frame.end());
  }
  for (int round = 0; round < 100; ++round) {
    const int fd = raw_connect(server.port());
    ASSERT_GT(send(fd, burst.data(), burst.size(), MSG_NOSIGNAL), 0);
    // Sweep the reset across the server's reply loop: busy-wait a different
    // sub-millisecond delay each round so some rounds reset before the
    // server reads, some while its frame loop is mid-burst replying (the
    // once-vulnerable window), some after.
    const auto delay = std::chrono::microseconds((round * 37) % 1200);
    const auto deadline = std::chrono::steady_clock::now() + delay;
    while (std::chrono::steady_clock::now() < deadline) {
    }
    const linger abort_on_close{1, 0};
    setsockopt(fd, SOL_SOCKET, SO_LINGER, &abort_on_close,
               sizeof abort_on_close);
    close(fd);
  }

  // The server survived every reset and still answers correctly.
  RbcClient client("127.0.0.1", server.port());
  EXPECT_EQ(client.knn(test_queries(2), 3).ids.rows(), 2u);
}

TEST(NetServer, OverloadRejectsWithRetryAfterAndRetrySucceeds) {
  auto slow = std::make_unique<DelayIndex>(built_index("bruteforce"),
                                           /*delay_ms=*/150);
  RbcServer server(std::move(slow), {.retry_after_ms = 20},
                   {.max_batch = 1, .max_wait_us = 0, .workers = 1,
                    .max_queue = 1});

  const Matrix<float> one = test_queries(1);
  // Keep the single service slot busy for ~0.5s of wall clock. The occupant
  // can itself lose the slot to the prober below, so it honors the hint too.
  std::thread occupant([&] {
    RbcClient a("127.0.0.1", server.port());
    for (int i = 0; i < 3; ++i) {
      for (;;) {
        try {
          EXPECT_EQ(a.knn(one, 3).ids.rows(), 1u);
          break;
        } catch (const RemoteError& e) {
          ASSERT_EQ(e.code(), ErrorCode::kOverloaded);
          std::this_thread::sleep_for(
              std::chrono::milliseconds(e.retry_after_ms()));
        }
      }
    }
  });

  // Fire until one lands while the slot is occupied: with the occupant's
  // back-to-back 150ms searches and max_queue = 1, a rejection is certain
  // within a few attempts.
  RbcClient b("127.0.0.1", server.port());
  bool rejected = false;
  for (int attempt = 0; attempt < 100 && !rejected; ++attempt) {
    try {
      (void)b.knn(one, 3);
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    } catch (const RemoteError& e) {
      ASSERT_EQ(e.code(), ErrorCode::kOverloaded);
      EXPECT_EQ(e.retry_after_ms(), 20u);
      rejected = true;
    }
  }
  occupant.join();
  EXPECT_TRUE(rejected);

  // Honoring the hint (the queue drains in bounded time) succeeds on the
  // same connection.
  for (int attempt = 0;; ++attempt) {
    try {
      EXPECT_EQ(b.knn(one, 3).ids.rows(), 1u);
      break;
    } catch (const RemoteError& e) {
      ASSERT_EQ(e.code(), ErrorCode::kOverloaded);
      ASSERT_LT(attempt, 100);
      std::this_thread::sleep_for(
          std::chrono::milliseconds(e.retry_after_ms()));
    }
  }

  EXPECT_GE(server.stats().rejected, 1u);
  EXPECT_GE(server.service()->stats().rejected, 1u);
  const InfoMsg info = b.info();
  EXPECT_GE(info.conn_rejected, 1u);  // per-connection counter, over the wire
  EXPECT_GE(info.rejected, 1u);       // service-wide counter
}

TEST(NetServer, StalledPartialFrameIsClosedByReadTimeout) {
  RbcServer server(built_index("bruteforce"), {.read_timeout_ms = 200});
  const int fd = raw_connect(server.port());
  // Half a header, then silence: a slow-loris connection must be reaped.
  const std::uint8_t half[10] = {0x4E, 0x43, 0x42, 0x52, 1, 1};
  ASSERT_GT(send(fd, half, sizeof half, MSG_NOSIGNAL), 0);
  std::uint8_t reply[64];
  EXPECT_EQ(recv(fd, reply, sizeof reply, 0), 0);  // server closed
  close(fd);
  EXPECT_GE(server.stats().timeouts, 1u);
}

TEST(NetServer, ConcurrentClientsAllGetCorrectAnswers) {
  auto index = built_index("bruteforce");
  const Matrix<float> queries = test_queries(24);
  const index_t k = 5;
  SearchRequest request{.queries = &queries, .k = k, .options = {}};
  const SearchResponse direct = index->knn_search(request);

  RbcServer server(std::move(index));
  constexpr int kClients = 6;
  std::vector<std::thread> threads;
  std::vector<std::string> failures(kClients);
  for (int c = 0; c < kClients; ++c)
    threads.emplace_back([&, c] {
      try {
        RbcClient client("127.0.0.1", server.port());
        for (int iter = 0; iter < 25; ++iter) {
          const index_t qi = (c * 25 + iter) % queries.rows();
          Matrix<float> one(1, kDim);
          one.copy_row_from(queries, qi, 0);
          const KnnResult r = client.knn(one, k);
          for (index_t j = 0; j < k; ++j)
            if (r.ids.at(0, j) != direct.knn.ids.at(qi, j) ||
                r.dists.at(0, j) != direct.knn.dists.at(qi, j)) {
              failures[c] = "mismatch at query " + std::to_string(qi);
              return;
            }
        }
      } catch (const std::exception& e) {
        failures[c] = e.what();
      }
    });
  for (std::thread& t : threads) t.join();
  for (int c = 0; c < kClients; ++c) EXPECT_EQ(failures[c], "") << "client " << c;
  EXPECT_GE(server.stats().connections_accepted, kClients);
}

TEST(NetServer, ZeroDowntimeReloadUnderLoad) {
  // Two exact backends over the same database, saved to disk: the server
  // starts on bruteforce and hot-swaps to rbc-exact mid-traffic. Every
  // answer during the swap must stay correct and no request may fail.
  const Matrix<float> database = testutil::clustered_matrix(800, kDim, 5, 31);
  const std::string dir = ::testing::TempDir();
  const std::string file_a = dir + "net_reload_a.rbc";
  const std::string file_b = dir + "net_reload_b.rbc";
  {
    auto a = make_index("bruteforce", shard_options());
    a->build(database);
    std::ofstream os(file_a, std::ios::binary);
    a->save(os);
  }
  {
    auto b = make_index("rbc-exact", shard_options());
    b->build(database);
    std::ofstream os(file_b, std::ios::binary);
    b->save(os);
  }

  const Matrix<float> queries = test_queries(16);
  const index_t k = 5;
  auto reference = make_index("bruteforce", shard_options());
  reference->build(database);
  SearchRequest request{.queries = &queries, .k = k, .options = {}};
  const SearchResponse direct = reference->knn_search(request);

  std::ifstream is(file_a, std::ios::binary);
  RbcServer server(load_index(is));

  std::atomic<bool> stop{false};
  std::vector<std::string> failures(4);
  std::vector<std::thread> load;
  for (int c = 0; c < 4; ++c)
    load.emplace_back([&, c] {
      try {
        RbcClient client("127.0.0.1", server.port());
        while (!stop.load()) {
          const KnnResult r = client.knn(queries, k);
          for (index_t i = 0; i < queries.rows(); ++i)
            for (index_t j = 0; j < k; ++j)
              if (r.ids.at(i, j) != direct.knn.ids.at(i, j)) {
                failures[c] = "wrong answer during reload";
                return;
              }
        }
      } catch (const std::exception& e) {
        failures[c] = e.what();
      }
    });

  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  {
    RbcClient admin("127.0.0.1", server.port());
    admin.reload(file_b);
    EXPECT_EQ(admin.info().backend, "rbc-exact");  // the swap took
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  stop.store(true);
  for (std::thread& t : load) t.join();
  for (int c = 0; c < 4; ++c) EXPECT_EQ(failures[c], "") << "client " << c;
  EXPECT_EQ(server.stats().reloads, 1u);

  // A reload from a bad path fails cleanly and keeps the current index.
  RbcClient client("127.0.0.1", server.port());
  EXPECT_THROW(client.reload(dir + "does_not_exist.rbc"), RemoteError);
  EXPECT_EQ(client.info().backend, "rbc-exact");
  EXPECT_EQ(client.knn(queries, k).ids.rows(), queries.rows());
}

TEST(NetServer, GracefulDrainViaStopFd) {
  RbcServer server(built_index("bruteforce"));
  const std::uint16_t port = server.port();
  {
    RbcClient client("127.0.0.1", port);
    EXPECT_EQ(client.info().dim, kDim);
  }
  // The async-signal-safe stop request (what a SIGTERM handler does).
  const std::uint64_t one = 1;
  ASSERT_EQ(write(server.stop_fd(), &one, sizeof one),
            static_cast<ssize_t>(sizeof one));
  server.wait();
  // The listener is gone: new connections are refused.
  EXPECT_THROW(RbcClient("127.0.0.1", port), std::runtime_error);
  server.stop();
}

// ------------------------------------------- multi-process scatter/gather --

pid_t spawn_shard_worker(index_t shard, index_t num_shards,
                         const std::string& port_file) {
  const pid_t pid = fork();
  if (pid == 0) {
    // Child: immediate execv of this binary in worker mode (the only safe
    // thing in a forked child of a threaded parent).
    const std::string s = std::to_string(shard);
    const std::string ns = std::to_string(num_shards);
    execl("/proc/self/exe", "/proc/self/exe", "--net-shard-worker", s.c_str(),
          ns.c_str(), port_file.c_str(), static_cast<char*>(nullptr));
    _exit(127);
  }
  return pid;
}

std::uint16_t wait_for_port_file(const std::string& path) {
  for (int attempt = 0; attempt < 300; ++attempt) {
    std::ifstream is(path);
    int port = 0;
    if (is >> port && port > 0) return static_cast<std::uint16_t>(port);
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }
  return 0;
}

TEST(NetRouterTest, TwoProcessScatterGatherIsBitIdenticalToShardedIndex) {
  constexpr index_t kShards = 2;
  const std::string dir = ::testing::TempDir();
  std::vector<pid_t> workers;
  std::vector<std::string> port_files;
  for (index_t s = 0; s < kShards; ++s) {
    port_files.push_back(dir + "net_shard_" + std::to_string(getpid()) + "_" +
                         std::to_string(s) + ".port");
    std::remove(port_files.back().c_str());
    workers.push_back(spawn_shard_worker(s, kShards, port_files.back()));
    ASSERT_GT(workers.back(), 0);
  }

  std::vector<dist::Endpoint> endpoints;
  for (const std::string& file : port_files) {
    const std::uint16_t port = wait_for_port_file(file);
    ASSERT_NE(port, 0) << "worker never published its port (" << file << ")";
    endpoints.push_back({"127.0.0.1", port});
  }

  // The in-process reference: the same partition, inner backend, options and
  // database — the merge code is literally shared, so results must be
  // bit-identical, ties included (the database has duplicated rows).
  auto reference = make_index("sharded:rbc-exact", shard_options());
  reference->build(test_database());

  dist::NetRouter router(endpoints);
  EXPECT_EQ(router.num_shards(), kShards);
  EXPECT_EQ(router.size(), test_database().rows());
  EXPECT_EQ(router.backend(), "rbc-exact");

  const Matrix<float> queries = test_queries(40);
  for (const index_t k : {index_t{1}, index_t{10}, index_t{64}}) {
    SearchRequest request{.queries = &queries, .k = k, .options = {}};
    const SearchResponse expected = reference->knn_search(request);
    const KnnResult routed = router.knn(queries, k);
    expect_same_knn(expected.knn, routed);
  }

  // Range scatter/gather parity over the same processes.
  const dist_t radius = 1.5f;
  RangeRequest range_request{
      .queries = &queries, .radius = radius, .options = {}};
  EXPECT_EQ(router.range(queries, radius),
            reference->range_search(range_request).ids);

  EXPECT_GT(router.stats().requests, 0u);

  // SIGTERM both workers: they drain gracefully and exit 0.
  for (const pid_t pid : workers) kill(pid, SIGTERM);
  for (const pid_t pid : workers) {
    int status = 0;
    ASSERT_EQ(waitpid(pid, &status, 0), pid);
    EXPECT_TRUE(WIFEXITED(status)) << "worker killed by signal";
    EXPECT_EQ(WEXITSTATUS(status), 0);
  }
  for (const std::string& file : port_files) std::remove(file.c_str());
}

/// A wire-correct but lying shard server: answers INFO like a real
/// `rows`-row shard, then knn/range responses whose shape or shard-local
/// ids violate the contract. Exercises NetRouter's trust boundary — wire
/// data from a buggy shard must raise ProtocolError, never index
/// global_ids_ or the merge inputs out of bounds.
class EvilShard {
 public:
  enum class Mode { kWrongRows, kWrongCols, kIdOutOfRange, kRangeIdOutOfRange };

  EvilShard(Mode mode, index_t rows) : mode_(mode), rows_(rows) {
    listen_fd_ = socket(AF_INET, SOCK_STREAM, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = 0;
    inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr);
    listen(listen_fd_, 1);
    socklen_t len = sizeof addr;
    getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len);
    port_ = ntohs(addr.sin_port);
    thread_ = std::thread([this] { serve(); });
  }

  ~EvilShard() {
    shutdown(listen_fd_, SHUT_RDWR);  // wakes a still-pending accept
    thread_.join();
    close(listen_fd_);
  }

  std::uint16_t port() const { return port_; }

 private:
  void serve() {
    const int fd = accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) return;
    for (;;) {
      std::uint8_t raw[serve::net::kHeaderSize];
      if (!read_exact(fd, raw, sizeof raw)) break;
      const auto header = serve::net::parse_header({raw, sizeof raw});
      if (!header) break;
      std::vector<std::uint8_t> payload(header->payload_len);
      if (!read_exact(fd, payload.data(), payload.size())) break;

      std::vector<std::uint8_t> reply;
      switch (header->op) {
        case serve::net::Op::kInfoRequest: {
          InfoMsg info;
          info.backend = "bruteforce";
          info.metric = "l2";
          info.size = rows_;
          info.dim = kDim;
          reply = serve::net::encode_info_response(header->request_id, info,
                                                   header->version);
          break;
        }
        case serve::net::Op::kKnnRequest: {
          // Decode (and answer) under the *request's* version: the router's
          // client speaks v1 when no deadline rides the call.
          const auto request =
              serve::net::decode_knn_request(payload, header->version);
          const index_t nq = request.queries.rows();
          KnnResult bad(mode_ == Mode::kWrongRows ? nq + 1 : nq,
                        mode_ == Mode::kWrongCols ? request.k + 1
                                                  : request.k);
          for (index_t i = 0; i < bad.ids.rows(); ++i)
            for (index_t j = 0; j < bad.ids.cols(); ++j) {
              // kIdOutOfRange: rows_ is one past the last valid local id.
              bad.ids.at(i, j) = mode_ == Mode::kIdOutOfRange ? rows_ : j;
              bad.dists.at(i, j) = 0.0f;
            }
          reply = serve::net::encode_knn_response(header->request_id, bad,
                                                  {1, 1}, header->version);
          break;
        }
        case serve::net::Op::kRangeRequest: {
          const auto request =
              serve::net::decode_range_request(payload, header->version);
          std::vector<std::vector<index_t>> bad(request.queries.rows());
          if (!bad.empty()) bad.front().push_back(rows_);  // out of range
          reply = serve::net::encode_range_response(header->request_id, bad,
                                                    {1, 1}, header->version);
          break;
        }
        default:
          return;
      }
      std::size_t sent = 0;
      while (sent < reply.size()) {
        const ssize_t w =
            send(fd, reply.data() + sent, reply.size() - sent, MSG_NOSIGNAL);
        if (w <= 0) break;
        sent += static_cast<std::size_t>(w);
      }
    }
    close(fd);
  }

  Mode mode_;
  index_t rows_;
  int listen_fd_ = -1;
  std::uint16_t port_ = 0;
  std::thread thread_;
};

TEST(NetRouterTest, RejectsMalformedShardResponses) {
  const Matrix<float> queries = test_queries(3);
  for (const EvilShard::Mode mode :
       {EvilShard::Mode::kWrongRows, EvilShard::Mode::kWrongCols,
        EvilShard::Mode::kIdOutOfRange}) {
    EvilShard shard(mode, /*rows=*/100);
    dist::NetRouter router({{"127.0.0.1", shard.port()}});
    EXPECT_THROW((void)router.knn(queries, 5), serve::net::ProtocolError);
  }
  {
    EvilShard shard(EvilShard::Mode::kRangeIdOutOfRange, /*rows=*/100);
    dist::NetRouter router({{"127.0.0.1", shard.port()}});
    EXPECT_THROW((void)router.range(queries, 1.0f),
                 serve::net::ProtocolError);
  }
}

}  // namespace

// ------------------------------------------------------- shard worker mode --
// Outside the anonymous namespace: main() below (file scope) calls it.

namespace {
int g_worker_stop_fd = -1;
void worker_signal(int) {
  const std::uint64_t one = 1;
  [[maybe_unused]] ssize_t n =
      write(g_worker_stop_fd, &one, sizeof one);
}
}  // namespace

/// Shard-owner process: builds THIS shard of the shared deterministic
/// database (the same rows ShardedIndex assigns it) and serves it until
/// SIGTERM.
int run_shard_worker(index_t shard, index_t num_shards,
                     const std::string& port_file) {
  const Matrix<float> database = test_database();
  const std::vector<std::vector<index_t>> assignment = shard::partition_rows(
      database.rows(), num_shards, shard::Partition::kContiguous);
  const std::vector<index_t>& mine = assignment[shard];
  Matrix<float> rows(static_cast<index_t>(mine.size()), database.cols());
  for (index_t i = 0; i < rows.rows(); ++i)
    rows.copy_row_from(database, mine[i], i);

  auto index = make_index("rbc-exact", shard_options());
  index->build(rows);
  RbcServer server(std::move(index));
  g_worker_stop_fd = server.stop_fd();
  std::signal(SIGTERM, worker_signal);

  // Publish the bound port atomically (write-then-rename) so the parent
  // never reads a half-written file.
  const std::string tmp = port_file + ".tmp";
  {
    std::ofstream os(tmp);
    os << server.port() << "\n";
  }
  std::rename(tmp.c_str(), port_file.c_str());

  server.wait();  // until SIGTERM
  server.stop();
  return 0;
}

}  // namespace rbc

// Custom main: worker mode for the multi-process test, gtest otherwise.
int main(int argc, char** argv) {
  if (argc >= 5 && std::strcmp(argv[1], "--net-shard-worker") == 0)
    return rbc::run_shard_worker(
        static_cast<rbc::index_t>(std::atoi(argv[2])),
        static_cast<rbc::index_t>(std::atoi(argv[3])), argv[4]);
  ::testing::InitGoogleTest(&argc, argv);
  return RUN_ALL_TESTS();
}
