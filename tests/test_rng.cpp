#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <vector>

#include "common/rng.hpp"

namespace rbc {
namespace {

TEST(Rng, DeterministicForFixedSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i)
    if (a() == b()) ++same;
  EXPECT_LT(same, 2);
}

TEST(Rng, SplitStreamsAreIndependentAndReproducible) {
  Rng parent(99);
  Rng s0 = parent.split(0);
  Rng s1 = parent.split(1);
  Rng s0_again = Rng(99).split(0);
  EXPECT_EQ(s0(), s0_again());
  int same = 0;
  for (int i = 0; i < 64; ++i)
    if (s0() == s1()) ++same;
  EXPECT_LT(same, 2);
}

TEST(Rng, UniformInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10'000; ++i) {
    const double u = rng.uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(Rng, UniformIndexInRange) {
  Rng rng(11);
  std::set<index_t> seen;
  for (int i = 0; i < 10'000; ++i) {
    const index_t v = rng.uniform_index(10);
    EXPECT_LT(v, 10u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 10u);  // all buckets hit over 10k draws
}

TEST(Rng, UniformIndexSingleton) {
  Rng rng(13);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.uniform_index(1), 0u);
}

TEST(Rng, NormalMomentsApproximatelyStandard) {
  Rng rng(17);
  const int n = 200'000;
  double sum = 0.0, sum_sq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal();
    sum += x;
    sum_sq += x * x;
  }
  const double mean = sum / n;
  const double var = sum_sq / n - mean * mean;
  EXPECT_NEAR(mean, 0.0, 0.02);
  EXPECT_NEAR(var, 1.0, 0.03);
}

TEST(Rng, BernoulliFrequency) {
  Rng rng(19);
  const int n = 100'000;
  int hits = 0;
  for (int i = 0; i < n; ++i)
    if (rng.bernoulli(0.3)) ++hits;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(Rng, UniformFloatRespectsBounds) {
  Rng rng(23);
  for (int i = 0; i < 10'000; ++i) {
    const float v = rng.uniform_float(-2.5f, 4.0f);
    EXPECT_GE(v, -2.5f);
    EXPECT_LT(v, 4.0f);
  }
}

}  // namespace
}  // namespace rbc
