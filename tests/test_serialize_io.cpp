#include <gtest/gtest.h>

#include <sstream>

#include "common/matrix.hpp"
#include "rbc/serialize_io.hpp"

namespace rbc::io {
namespace {

TEST(SerializeIo, PodRoundTrip) {
  std::stringstream stream;
  write_pod(stream, std::uint32_t{0xDEADBEEF});
  write_pod(stream, 3.25);
  write_pod(stream, std::int64_t{-42});
  std::uint32_t a = 0;
  double b = 0;
  std::int64_t c = 0;
  read_pod(stream, a);
  read_pod(stream, b);
  read_pod(stream, c);
  EXPECT_EQ(a, 0xDEADBEEFu);
  EXPECT_EQ(b, 3.25);
  EXPECT_EQ(c, -42);
}

TEST(SerializeIo, ExpectPodThrowsOnMismatch) {
  std::stringstream stream;
  write_pod(stream, std::uint32_t{1});
  EXPECT_THROW(expect_pod(stream, std::uint32_t{2}, "field"),
               std::runtime_error);
}

TEST(SerializeIo, TruncatedPodThrows) {
  std::stringstream stream;
  stream.write("ab", 2);
  std::uint64_t value = 0;
  EXPECT_THROW(read_pod(stream, value), std::runtime_error);
}

TEST(SerializeIo, StringRoundTrip) {
  std::stringstream stream;
  write_string(stream, "l2");
  write_string(stream, "");
  write_string(stream, std::string(1000, 'x'));
  EXPECT_EQ(read_string(stream), "l2");
  EXPECT_EQ(read_string(stream), "");
  EXPECT_EQ(read_string(stream).size(), 1000u);
}

TEST(SerializeIo, ExpectStringThrowsOnMismatch) {
  std::stringstream stream;
  write_string(stream, "l1");
  EXPECT_THROW(expect_string(stream, "l2", "metric"), std::runtime_error);
}

TEST(SerializeIo, VecRoundTripIncludingEmpty) {
  std::stringstream stream;
  const std::vector<float> values = {1.5f, -2.25f, 0.0f};
  const std::vector<index_t> empty;
  write_vec(stream, values);
  write_vec(stream, empty);
  std::vector<float> values_back;
  std::vector<index_t> empty_back = {7};  // must be cleared by read
  read_vec(stream, values_back);
  read_vec(stream, empty_back);
  EXPECT_EQ(values_back, values);
  EXPECT_TRUE(empty_back.empty());
}

TEST(SerializeIo, MatrixRoundTripDropsPadding) {
  Matrix<float> m(3, 21);  // stride 32: padding must not be serialized
  for (index_t i = 0; i < 3; ++i)
    for (index_t j = 0; j < 21; ++j)
      m.at(i, j) = static_cast<float>(i * 100 + j);
  std::stringstream stream;
  write_matrix(stream, m);
  // Payload: 2 dims + 3*21 floats — no stride leakage.
  EXPECT_EQ(stream.str().size(), 2 * sizeof(index_t) + 63 * sizeof(float));
  const Matrix<float> back = read_matrix(stream);
  ASSERT_EQ(back.rows(), 3u);
  ASSERT_EQ(back.cols(), 21u);
  for (index_t i = 0; i < 3; ++i) {
    for (index_t j = 0; j < 21; ++j) EXPECT_EQ(back.at(i, j), m.at(i, j));
    for (index_t j = 21; j < back.stride(); ++j)
      EXPECT_EQ(back.row(i)[j], 0.0f) << "padding must be re-zeroed";
  }
}

TEST(SerializeIo, TruncatedMatrixThrows) {
  Matrix<float> m(4, 8);
  std::stringstream stream;
  write_matrix(stream, m);
  const std::string full = stream.str();
  std::stringstream cut(full.substr(0, full.size() - 10));
  EXPECT_THROW((void)read_matrix(cut), std::runtime_error);
}

}  // namespace
}  // namespace rbc::io
