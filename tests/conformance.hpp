// Cross-backend conformance harness: one parameterized suite that every
// factory-registered backend must pass.
//
// Before this harness the per-backend contracts (exactness vs brute force,
// the k > n error shape, serialize round-trips, thread-safety of const
// search) were asserted by copy-pasted per-backend tests that new backends
// could silently skip. Here the checks are written once against the unified
// rbc::Index interface and instantiated from rbc::registered_backends(), so
// registering a backend *is* opting into the full suite — including the
// sharded:* composites, whose extra bit-parity obligation (identical ids,
// distances, and tie order to the wrapped backend at several shard counts)
// is enforced here too.
//
// test_conformance.cpp instantiates the suite; the checks live in this
// header so other tests (stress, determinism) can reuse the datasets and
// reference helpers.
#pragma once

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <memory>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "api/api.hpp"
#include "api/metrics.hpp"
#include "metricspace/dataset.hpp"
#include "metricspace/space.hpp"
#include "test_util.hpp"

namespace rbc::conformance {

/// A named (database, queries) pair. The suite runs every check on several
/// datasets with different neighborhood structure; `ties` marks the one
/// with duplicated rows, where exact backends must reproduce the
/// (distance, id) tie order bit-for-bit.
struct Dataset {
  std::string name;
  Matrix<float> X;
  Matrix<float> Q;
};

/// The suite's fixed datasets: clustered blobs (pruning-friendly), uniform
/// noise (pruning-hostile), and clustered data with duplicated rows
/// (guaranteed distance ties).
inline std::vector<Dataset> datasets() {
  std::vector<Dataset> sets;
  {
    auto [X, Q] =
        testutil::split_rows(testutil::clustered_matrix(560, 12, 6, 101), 520);
    sets.push_back({"clustered", std::move(X), std::move(Q)});
  }
  {
    auto [X, Q] =
        testutil::split_rows(testutil::random_matrix(410, 9, 102), 380);
    sets.push_back({"uniform", std::move(X), std::move(Q)});
  }
  {
    // Held-out in-distribution queries (the paper's protocol) so the
    // recall bound is meaningful for approximate backends too; the
    // database rows are duplicated for guaranteed distance ties.
    auto [base, Q] =
        testutil::split_rows(testutil::clustered_matrix(230, 8, 4, 103), 200);
    Matrix<float> X = testutil::with_duplicates(base, 160);
    sets.push_back({"ties", std::move(X), std::move(Q)});
  }
  return sets;
}

/// Build options every backend accepts on the suite's small datasets: a
/// fixed seed (reproducible RBC sampling), a small SIMT pool for the device
/// backends, and a shard count that exercises clamping without dwarfing
/// the data.
inline IndexOptions suite_options() {
  IndexOptions options;
  options.rbc.seed = 7;
  options.gpu_workers = 2;
  options.num_shards = 3;
  return options;
}

/// Recall@1 of `result` against the exact reference (both over the same
/// queries) — the acceptance measure for approximate backends.
inline double recall_at_1(const KnnResult& result, const KnnResult& exact) {
  index_t agree = 0;
  for (index_t qi = 0; qi < result.ids.rows(); ++qi)
    if (result.ids.at(qi, 0) == exact.ids.at(qi, 0)) ++agree;
  return result.ids.rows() == 0
             ? 1.0
             : static_cast<double>(agree) / result.ids.rows();
}

/// Builds the backend over X with the suite options.
inline std::unique_ptr<Index> build_index(const std::string& backend,
                                          const Matrix<float>& X) {
  auto index = make_index(backend, suite_options());
  index->build(X);
  return index;
}

// ---------------------------------------------------------------- checks ---

/// Exact backends must equal the naive reference including tie order;
/// approximate backends must keep a sane recall@1.
inline void check_answers(const std::string& backend) {
  for (const Dataset& data : datasets()) {
    SCOPED_TRACE(backend + " on " + data.name);
    auto index = build_index(backend, data.X);
    for (index_t k : {index_t{1}, index_t{5}}) {
      const KnnResult reference = testutil::naive_knn(data.Q, data.X, k);
      const SearchResponse response =
          index->knn_search({.queries = &data.Q, .k = k});
      ASSERT_EQ(response.knn.ids.rows(), data.Q.rows());
      ASSERT_EQ(response.knn.ids.cols(), k);
      if (index->info().exact) {
        EXPECT_TRUE(testutil::knn_equal(reference, response.knn))
            << backend << " diverged from brute force at k=" << k;
      } else {
        EXPECT_GT(recall_at_1(response.knn, reference), 1.0 / 3.0)
            << backend << " recall collapsed at k=" << k;
      }
    }
  }
}

/// The unified request-error contract: identical conditions and message
/// shape across every backend (see Index::knn_search).
inline void check_error_contract(const std::string& backend) {
  const Matrix<float> X = testutil::random_matrix(50, 6, 105);
  const Matrix<float> Q = testutil::random_matrix(5, 6, 106);
  const Matrix<float> wrong_dim = testutil::random_matrix(5, 4, 107);

  auto index = make_index(backend, suite_options());
  EXPECT_THROW((void)index->knn_search({.queries = &Q, .k = 1}),
               std::invalid_argument)
      << backend << ": unbuilt index";
  index->build(X);
  EXPECT_THROW((void)index->knn_search({.queries = nullptr, .k = 1}),
               std::invalid_argument)
      << backend << ": null queries";
  EXPECT_THROW((void)index->knn_search({.queries = &Q, .k = 0}),
               std::invalid_argument)
      << backend << ": k == 0";
  EXPECT_THROW((void)index->knn_search({.queries = &wrong_dim, .k = 1}),
               std::invalid_argument)
      << backend << ": dimension mismatch";
  try {
    (void)index->knn_search({.queries = &Q, .k = X.rows() + 1});
    FAIL() << backend << " accepted k > database size";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("exceeds database size"),
              std::string::npos)
        << backend << " threw a different message: " << e.what();
  }
}

/// Degenerate-but-legal inputs: an empty query block answers with an empty
/// response, and a one-point database answers k = 1.
inline void check_degenerate_inputs(const std::string& backend) {
  const Matrix<float> X = testutil::clustered_matrix(40, 5, 3, 108);
  auto index = build_index(backend, X);

  const Matrix<float> no_queries(0, 5);
  const SearchResponse empty =
      index->knn_search({.queries = &no_queries, .k = 2});
  EXPECT_EQ(empty.knn.ids.rows(), 0u) << backend << ": empty query block";

  Matrix<float> one_point(1, 5);
  for (index_t j = 0; j < 5; ++j) one_point.at(0, j) = 0.5f;
  auto tiny = make_index(backend, suite_options());
  tiny->build(one_point);
  const Matrix<float> q = testutil::random_matrix(3, 5, 109);
  const SearchResponse r = tiny->knn_search({.queries = &q, .k = 1});
  for (index_t qi = 0; qi < q.rows(); ++qi)
    EXPECT_EQ(r.knn.ids.at(qi, 0), 0u)
        << backend << ": one-point database must answer id 0";
}

/// save -> load_index -> search must reproduce the original answers
/// exactly. Skips backends that declare !supports_save (after checking
/// that save() then throws as documented).
inline void check_serialize_roundtrip(const std::string& backend) {
  const Dataset data = std::move(datasets().front());
  auto index = build_index(backend, data.X);
  const index_t k = 4;
  const KnnResult before =
      index->knn_search({.queries = &data.Q, .k = k}).knn;

  std::stringstream stream;
  if (!index->info().supports_save) {
    EXPECT_THROW(index->save(stream), std::runtime_error)
        << backend << ": unsupported save must throw, not silently no-op";
    return;
  }
  index->save(stream);
  const auto restored = load_index(stream);
  ASSERT_NE(restored, nullptr);
  EXPECT_EQ(restored->info().backend, backend);
  EXPECT_EQ(restored->info().size, data.X.rows());
  const KnnResult after =
      restored->knn_search({.queries = &data.Q, .k = k}).knn;
  EXPECT_TRUE(testutil::knn_equal(before, after))
      << backend << ": restored index diverged";
}

/// Concurrent const searches (the contract SearchService relies on): every
/// thread must see the same answers a lone caller gets.
inline void check_concurrent_search(const std::string& backend) {
  const Dataset data = std::move(datasets().front());
  auto index = build_index(backend, data.X);
  const index_t k = 3;
  const KnnResult reference =
      index->knn_search({.queries = &data.Q, .k = k}).knn;

  constexpr int kThreads = 4, kRounds = 3;
  std::vector<int> mismatches(kThreads, 0);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t)
    threads.emplace_back([&, t] {
      for (int round = 0; round < kRounds; ++round) {
        const KnnResult result =
            index->knn_search({.queries = &data.Q, .k = k}).knn;
        if (!testutil::knn_equal(reference, result)) ++mismatches[t];
      }
    });
  for (std::thread& thread : threads) thread.join();
  for (int t = 0; t < kThreads; ++t)
    EXPECT_EQ(mismatches[t], 0)
        << backend << ": thread " << t << " saw diverging results";
}

/// The sharded composites' extra obligation: bit-identical (ids, distances,
/// tie order) to the wrapped backend at shard counts {1, 2, 7} under both
/// partition schemes, on every dataset — enforced for exact inners, where
/// the answer is unique. (Approximate inners legitimately answer from a
/// different per-shard structure; check_answers already bounds their
/// recall.) No-op for non-sharded backends.
inline void check_sharded_bit_parity(const std::string& backend) {
  constexpr std::string_view kPrefix = "sharded:";
  if (backend.substr(0, kPrefix.size()) != kPrefix) return;
  const std::string inner = backend.substr(kPrefix.size());

  for (const Dataset& data : datasets()) {
    auto reference_index = build_index(inner, data.X);
    if (!reference_index->info().exact) return;
    const index_t k = 5;
    const KnnResult reference =
        reference_index->knn_search({.queries = &data.Q, .k = k}).knn;

    for (index_t shards : {index_t{1}, index_t{2}, index_t{7}}) {
      for (const char* partition : {"contiguous", "strided"}) {
        SCOPED_TRACE(backend + " on " + data.name + " shards=" +
                     std::to_string(shards) + " partition=" + partition);
        IndexOptions options = suite_options();
        options.num_shards = shards;
        options.partition = partition;
        auto sharded = make_index(backend, options);
        sharded->build(data.X);
        EXPECT_EQ(sharded->info().shards, std::min(shards, data.X.rows()));
        const KnnResult result =
            sharded->knn_search({.queries = &data.Q, .k = k}).knn;
        EXPECT_TRUE(testutil::knn_equal(reference, result))
            << backend << " is not bit-identical to " << inner;
      }
    }
  }
}

// ------------------------------------------------- metric x backend matrix ---

/// Reference k-NN under a registry metric, mirroring the backends' exact
/// computation path (the cosine case uses the same shared normalize() and
/// distance conversion the backends use, so exact backends must match it
/// bit for bit).
inline KnnResult metric_reference_knn(const Matrix<float>& Q,
                                      const Matrix<float>& X,
                                      metric::Kind kind, index_t k) {
  switch (kind) {
    case metric::Kind::kL2:
      return testutil::naive_knn(Q, X, k, Euclidean{});
    case metric::Kind::kL1:
      return testutil::naive_knn(Q, X, k, L1{});
    case metric::Kind::kCosine: {
      KnnResult r = testutil::naive_knn(metric::normalized_clone(Q),
                                        metric::normalized_clone(X), k,
                                        Euclidean{});
      metric::cosine_distances_from_l2(r.dists);
      return r;
    }
    case metric::Kind::kIp:
      return testutil::naive_knn(Q, X, k, InnerProduct{});
  }
  return KnnResult(Q.rows(), k);
}

/// Every metric a backend declares in supported_metrics must actually
/// work: info().metric reports it, exact backends reproduce the per-metric
/// scalar reference including tie order, approximate backends keep a sane
/// recall@1 against that reference, and a request asserting the built
/// metric passes the shared validator.
inline void check_metric_matrix(const std::string& backend) {
  const std::vector<std::string> supported =
      make_index(backend, suite_options())->info().supported_metrics;
  ASSERT_FALSE(supported.empty()) << backend;
  for (const std::string& name : supported) {
    metric::Kind kind{};
    ASSERT_TRUE(metric::lookup(name, kind))
        << backend << " declares unknown metric '" << name << "'";
    for (const Dataset& data : datasets()) {
      SCOPED_TRACE(backend + " metric=" + name + " on " + data.name);
      IndexOptions options = suite_options();
      options.metric = name;
      auto index = make_index(backend, options);
      index->build(data.X);
      EXPECT_EQ(index->info().metric, name);
      const index_t k = 4;
      const KnnResult reference =
          metric_reference_knn(data.Q, data.X, kind, k);
      SearchRequest request{.queries = &data.Q, .k = k};
      request.options.metric = name;  // assert-the-built-metric contract
      const SearchResponse response = index->knn_search(request);
      if (index->info().exact) {
        EXPECT_TRUE(testutil::knn_equal(reference, response.knn))
            << backend << " diverged from the " << name << " reference";
      } else {
        EXPECT_GT(recall_at_1(response.knn, reference), 1.0 / 3.0)
            << backend << " recall collapsed under " << name;
      }
    }
  }
}

/// The unsupported-metric contract: every registry metric a backend does
/// NOT declare must be rejected at make_index time with the uniform
/// std::invalid_argument shape, as must names outside the registry; and a
/// request asserting a metric other than the built one must fail in the
/// shared validator.
inline void check_unsupported_metric_contract(const std::string& backend) {
  const std::vector<std::string> supported =
      make_index(backend, suite_options())->info().supported_metrics;
  auto expect_rejected = [&](const std::string& name) {
    IndexOptions options = suite_options();
    options.metric = name;
    try {
      (void)make_index(backend, options);
      FAIL() << backend << " accepted metric '" << name << "'";
    } catch (const std::invalid_argument& e) {
      EXPECT_NE(std::string(e.what()).find("unsupported metric"),
                std::string::npos)
          << backend << " threw a different message: " << e.what();
    }
  };
  for (const metric::Entry& entry : metric::registry())
    if (std::find(supported.begin(), supported.end(), entry.name) ==
        supported.end())
      expect_rejected(entry.name);
  expect_rejected("no-such-metric");

  // Metric-assertion mismatch: the shared validator, not the backend, must
  // reject a request that assumes a different metric than the index holds.
  const Matrix<float> X = testutil::clustered_matrix(40, 5, 3, 110);
  const Matrix<float> Q = testutil::random_matrix(3, 5, 111);
  auto index = build_index(backend, X);  // built with the default "l2"
  SearchRequest mismatched{.queries = &Q, .k = 1};
  mismatched.options.metric = "cosine";
  EXPECT_THROW((void)index->knn_search(mismatched), std::invalid_argument)
      << backend << ": metric-assertion mismatch must throw";
  SearchRequest asserted{.queries = &Q, .k = 1};
  asserted.options.metric = "l2";
  EXPECT_NO_THROW((void)index->knn_search(asserted))
      << backend << ": asserting the built metric must pass";
}

/// Sharded bit-parity under "cosine" (the satellite obligation of the
/// metric redesign): the composite must stay bit-identical to its inner
/// backend when both run the normalized-L2 cosine path — the merge
/// operates on converted distances, so this pins the conversion happening
/// inside the shards, once, not per layer. No-op for non-sharded backends
/// and inners without cosine.
inline void check_sharded_metric_parity(const std::string& backend) {
  constexpr std::string_view kPrefix = "sharded:";
  if (backend.substr(0, kPrefix.size()) != kPrefix) return;
  const std::string inner = backend.substr(kPrefix.size());
  const std::vector<std::string> supported =
      make_index(inner, suite_options())->info().supported_metrics;
  if (std::find(supported.begin(), supported.end(), "cosine") ==
      supported.end())
    return;

  for (const Dataset& data : datasets()) {
    IndexOptions inner_options = suite_options();
    inner_options.metric = "cosine";
    auto reference_index = make_index(inner, inner_options);
    reference_index->build(data.X);
    if (!reference_index->info().exact) return;
    const index_t k = 5;
    const KnnResult reference =
        reference_index->knn_search({.queries = &data.Q, .k = k}).knn;

    for (index_t shards : {index_t{2}, index_t{7}}) {
      for (const char* partition : {"contiguous", "strided"}) {
        SCOPED_TRACE(backend + " cosine on " + data.name + " shards=" +
                     std::to_string(shards) + " partition=" + partition);
        IndexOptions options = suite_options();
        options.metric = "cosine";
        options.num_shards = shards;
        options.partition = partition;
        auto sharded = make_index(backend, options);
        sharded->build(data.X);
        EXPECT_EQ(sharded->info().metric, "cosine");
        const KnnResult result =
            sharded->knn_search({.queries = &data.Q, .k = k}).knn;
        EXPECT_TRUE(testutil::knn_equal(reference, result))
            << backend << " cosine is not bit-identical to " << inner;
      }
    }
  }
}

/// Serialize round-trips must preserve the metric: a restored index
/// reports the same info().metric and answers identically under it ("l2"
/// is covered by check_serialize_roundtrip; this covers the rest).
inline void check_metric_serialize_roundtrip(const std::string& backend) {
  const Dataset data = std::move(datasets().front());
  const std::vector<std::string> supported =
      make_index(backend, suite_options())->info().supported_metrics;
  for (const std::string& name : supported) {
    if (name == "l2") continue;
    SCOPED_TRACE(backend + " metric=" + name);
    IndexOptions options = suite_options();
    options.metric = name;
    auto index = make_index(backend, options);
    index->build(data.X);
    if (!index->info().supports_save) continue;
    const index_t k = 4;
    const KnnResult before =
        index->knn_search({.queries = &data.Q, .k = k}).knn;
    std::stringstream stream;
    index->save(stream);
    const auto restored = load_index(stream);
    ASSERT_NE(restored, nullptr);
    EXPECT_EQ(restored->info().backend, backend);
    EXPECT_EQ(restored->info().metric, name);
    const KnnResult after =
        restored->knn_search({.queries = &data.Q, .k = k}).knn;
    EXPECT_TRUE(testutil::knn_equal(before, after))
        << backend << ": restored " << name << " index diverged";
  }
}

// ------------------------------------------------------ mutation checks ---

/// The uniform mutation-capability contract: backends that declare
/// supports_mutation must enforce the insert/remove argument contract with
/// the shared invalid_argument shapes, and backends that don't must reject
/// every mutation entry point with the uniform runtime_error — never a
/// silent no-op or a crash.
inline void check_mutation_contract(const std::string& backend) {
  const Matrix<float> X = testutil::random_matrix(30, 6, 115);
  auto index = build_index(backend, X);
  Matrix<float> one(1, 6);
  for (index_t j = 0; j < 6; ++j) one.at(0, j) = 0.25f * (j + 1);

  if (!index->info().supports_mutation) {
    const std::vector<index_t> id{500};
    try {
      index->insert(one, id);
      FAIL() << backend << " accepted insert without declaring mutation";
    } catch (const std::runtime_error& e) {
      EXPECT_NE(std::string(e.what()).find("does not support mutation"),
                std::string::npos)
          << backend << " threw a different message: " << e.what();
    }
    EXPECT_THROW((void)index->remove(id), std::runtime_error) << backend;
    EXPECT_THROW(index->compact(), std::runtime_error) << backend;
    EXPECT_THROW((void)index->live_ids(), std::runtime_error) << backend;
    EXPECT_THROW(index->build_with_ids(X, std::vector<index_t>{}),
                 std::runtime_error)
        << backend;
    return;
  }

  // Unbuilt index: mutation is a caller error, same as search.
  {
    auto fresh = make_index(backend, suite_options());
    const std::vector<index_t> id{500};
    EXPECT_THROW(fresh->insert(one, id), std::invalid_argument)
        << backend << ": insert before build";
    EXPECT_THROW((void)fresh->remove(id), std::invalid_argument)
        << backend << ": remove before build";
  }

  // Malformed insert batches leave the index untouched.
  {
    Matrix<float> wrong_dim(1, 4);
    for (index_t j = 0; j < 4; ++j) wrong_dim.at(0, j) = 1.0f;
    const std::vector<index_t> id{501};
    EXPECT_THROW(index->insert(wrong_dim, id), std::invalid_argument)
        << backend << ": dimension mismatch";
    const std::vector<index_t> two_ids{501, 502};
    EXPECT_THROW(index->insert(one, two_ids), std::invalid_argument)
        << backend << ": id/row count mismatch";
    Matrix<float> two(2, 6);
    for (index_t j = 0; j < 6; ++j) two.at(0, j) = two.at(1, j) = 0.5f;
    const std::vector<index_t> dup{501, 501};
    EXPECT_THROW(index->insert(two, dup), std::invalid_argument)
        << backend << ": duplicate ids in one batch";
    const std::vector<index_t> invalid{kInvalidIndex};
    EXPECT_THROW(index->insert(one, invalid), std::invalid_argument)
        << backend << ": the reserved invalid id";
    const std::vector<index_t> taken{3};
    try {
      index->insert(one, taken);
      FAIL() << backend << " accepted an id that is already live";
    } catch (const std::invalid_argument& e) {
      EXPECT_NE(std::string(e.what()).find("already live"), std::string::npos)
          << backend << " threw a different message: " << e.what();
    }
    EXPECT_EQ(index->info().size, X.rows())
        << backend << ": rejected inserts must not change the index";
  }

  // remove() dedupes its request and ignores unknown ids: {5, 5, 99}
  // removes exactly one live row.
  {
    const std::vector<index_t> ids{5, 5, 99};
    EXPECT_EQ(index->remove(ids), 1u) << backend;
    EXPECT_EQ(index->info().size, X.rows() - 1) << backend;
    const std::vector<index_t> again{5};
    EXPECT_EQ(index->remove(again), 0u)
        << backend << ": removing a dead id twice";
    // A removed id is free for reuse — with fresh row content.
    EXPECT_NO_THROW(index->insert(one, again)) << backend;
  }

  // The post-delete k > n contract (the deduped validation path): once
  // removals drop the live count below k, the search must fail with the
  // exact build-time k > n error shape, and k == live must still pass.
  {
    Matrix<float> three(3, 6);
    for (index_t i = 0; i < 3; ++i)
      for (index_t j = 0; j < 6; ++j) three.at(i, j) = 0.1f * (i * 6 + j);
    auto small = make_index(backend, suite_options());
    small->build(three);
    const std::vector<index_t> drop{0};
    ASSERT_EQ(small->remove(drop), 1u) << backend;
    const Matrix<float> q = testutil::random_matrix(2, 6, 116);
    try {
      (void)small->knn_search({.queries = &q, .k = 3});
      FAIL() << backend << " accepted k > live size after remove";
    } catch (const std::invalid_argument& e) {
      EXPECT_NE(std::string(e.what()).find("exceeds database size"),
                std::string::npos)
          << backend << " threw a different message: " << e.what();
    }
    EXPECT_NO_THROW((void)small->knn_search({.queries = &q, .k = 2}))
        << backend << ": k == live size after remove must pass";
  }
}

/// Logical database the mutate-then-search matrix mirrors: live id -> row.
using MutationMirror = std::map<index_t, std::vector<float>>;

/// Rebuilds `backend` from scratch over exactly the mirror's live rows
/// (ids ascending) — the reference a mutated index is compared against.
inline std::unique_ptr<Index> rebuild_from_mirror(const std::string& backend,
                                                  const IndexOptions& options,
                                                  const MutationMirror& mirror,
                                                  index_t dim) {
  Matrix<float> X(static_cast<index_t>(mirror.size()), dim);
  std::vector<index_t> ids;
  ids.reserve(mirror.size());
  for (const auto& [id, row] : mirror) {
    for (index_t j = 0; j < dim; ++j)
      X.at(static_cast<index_t>(ids.size()), j) = row[j];
    ids.push_back(id);
  }
  auto scratch = make_index(backend, options);
  scratch->build_with_ids(X, ids);
  return scratch;
}

/// One checkpoint of the mutate-then-search matrix: the mutated index must
/// agree with a scratch rebuild over the same logical rows. Exact backends
/// must agree bit-for-bit (ids, distances, tie order) at EVERY checkpoint —
/// delta rows and tombstones included; approximate backends must agree
/// bit-for-bit whenever the structure is provably identical (delta empty,
/// unsharded: the merge assembles rows in ascending-id order, exactly the
/// scratch build's input, under the same seed) and satisfy the result
/// invariants (live ids only, sorted, no duplicates) otherwise.
inline void verify_mutation_checkpoint(Index& index,
                                       const std::string& backend,
                                       const IndexOptions& options,
                                       const MutationMirror& mirror,
                                       const Matrix<float>& Q) {
  const index_t dim = Q.cols();
  const IndexInfo info = index.info();
  ASSERT_EQ(info.size, mirror.size());

  std::vector<index_t> expected_ids;
  expected_ids.reserve(mirror.size());
  for (const auto& [id, row] : mirror) expected_ids.push_back(id);
  EXPECT_EQ(index.live_ids(), expected_ids);

  const auto k = static_cast<index_t>(
      std::min<std::size_t>(5, mirror.size()));
  ASSERT_GE(k, 1u);
  const KnnResult result = index.knn_search({.queries = &Q, .k = k}).knn;

  auto scratch = rebuild_from_mirror(backend, options, mirror, dim);
  const KnnResult reference = scratch->knn_search({.queries = &Q, .k = k}).knn;

  const bool sharded = backend.rfind("sharded:", 0) == 0;
  const bool clean = info.delta_rows == 0 && info.tombstones == 0;
  if (info.exact || (clean && !sharded)) {
    EXPECT_TRUE(testutil::knn_equal(reference, result))
        << backend << " diverged from a scratch rebuild over the same "
        << mirror.size() << " live rows (delta_rows=" << info.delta_rows
        << " tombstones=" << info.tombstones << ")";
  } else {
    const std::set<index_t> live(expected_ids.begin(), expected_ids.end());
    for (index_t qi = 0; qi < Q.rows(); ++qi) {
      std::set<index_t> seen;
      for (index_t j = 0; j < k; ++j) {
        const index_t id = result.ids.at(qi, j);
        EXPECT_TRUE(live.count(id) == 1)
            << backend << " answered dead/unknown id " << id;
        EXPECT_TRUE(seen.insert(id).second)
            << backend << " answered id " << id << " twice for one query";
        if (j > 0)
          EXPECT_GE(result.dists.at(qi, j), result.dists.at(qi, j - 1))
              << backend << " returned unsorted distances";
      }
    }
  }
}

/// The mutate-then-search conformance matrix (the tentpole's lock): drive a
/// fixed insert/remove/merge/compact schedule against every mutation-capable
/// backend and compare with a scratch rebuild at every checkpoint, across
/// the backend's whole supported-metric set. Merges run inline
/// (background_merge = false) so every phase is deterministic; max_delta = 6
/// makes the schedule cross the merge threshold mid-run. No-op for backends
/// without mutation support (check_mutation_contract pins their rejection).
inline void check_mutate_then_search(const std::string& backend) {
  if (!make_index(backend, suite_options())->info().supports_mutation) return;
  const index_t dim = 8;
  const Matrix<float> pool = testutil::clustered_matrix(80, dim, 5, 117);
  const Matrix<float> Q = testutil::random_matrix(10, dim, 118);
  const std::vector<std::string> supported =
      make_index(backend, suite_options())->info().supported_metrics;

  auto pool_row = [&](index_t r) {
    return std::vector<float>(pool.row(r), pool.row(r) + dim);
  };
  auto insert_rows = [&](Index& index, MutationMirror& mirror,
                         const std::vector<index_t>& ids, index_t pool_from) {
    Matrix<float> rows(static_cast<index_t>(ids.size()), dim);
    for (index_t i = 0; i < rows.rows(); ++i) {
      rows.copy_row_from(pool, pool_from + i, i);
      mirror[ids[i]] = pool_row(pool_from + i);
    }
    index.insert(rows, ids);
  };
  auto remove_rows = [&](Index& index, MutationMirror& mirror,
                         const std::vector<index_t>& ids) {
    index_t live = 0;
    for (index_t id : ids) live += mirror.erase(id);
    EXPECT_EQ(index.remove(ids), live) << backend;
  };

  // Sharded composites run the whole schedule at several shard counts —
  // including more shards than the insert schedule fills evenly.
  const bool is_sharded = backend.rfind("sharded:", 0) == 0;
  const std::vector<index_t> shard_counts =
      is_sharded ? std::vector<index_t>{1, 2, 7} : std::vector<index_t>{0};

  for (const std::string& metric : supported) {
  for (const index_t shards : shard_counts) {
    SCOPED_TRACE(backend + " metric=" + metric +
                 (is_sharded ? " shards=" + std::to_string(shards) : ""));
    IndexOptions options = suite_options();
    options.metric = metric;
    if (shards != 0) options.num_shards = shards;
    options.max_delta = 6;          // schedule crosses the merge threshold
    options.background_merge = false;  // merges run inline: deterministic

    auto index = make_index(backend, options);
    MutationMirror mirror;

    // Phase 0: plain build over ids 0..39.
    Matrix<float> X0(40, dim);
    for (index_t i = 0; i < 40; ++i) {
      X0.copy_row_from(pool, i, i);
      mirror[i] = pool_row(i);
    }
    index->build(X0);
    verify_mutation_checkpoint(*index, backend, options, mirror, Q);

    // Phase 1: a small insert lands in the delta shard (3 < max_delta).
    insert_rows(*index, mirror, {100, 101, 102}, 40);
    verify_mutation_checkpoint(*index, backend, options, mirror, Q);

    // Phase 2: removes masking main rows (tombstones) and a delta row.
    remove_rows(*index, mirror, {1, 7, 13, 25, 101});
    verify_mutation_checkpoint(*index, backend, options, mirror, Q);

    // Phase 3: this insert pushes the delta to max_delta — inline merge.
    // (Sharded composites keep a delta per shard and route the batch to the
    // least-full one, so only the unsharded index provably crosses the
    // threshold here.)
    insert_rows(*index, mirror, {200, 201, 202, 203}, 43);
    if (!is_sharded)
      EXPECT_EQ(index->info().delta_rows, 0u)
          << backend << ": crossing max_delta must trigger the merge";
    verify_mutation_checkpoint(*index, backend, options, mirror, Q);

    // Phase 4: reinsert a previously removed id with different content.
    insert_rows(*index, mirror, {7}, 47);
    verify_mutation_checkpoint(*index, backend, options, mirror, Q);

    // Phase 5: remove the reinserted id again plus unknown ids (ignored).
    remove_rows(*index, mirror, {7, 999});
    verify_mutation_checkpoint(*index, backend, options, mirror, Q);

    // Phase 6: compact folds everything into the main structure.
    index->compact();
    EXPECT_EQ(index->info().delta_rows, 0u) << backend;
    EXPECT_EQ(index->info().tombstones, 0u) << backend;
    verify_mutation_checkpoint(*index, backend, options, mirror, Q);
  }
  }
}

/// A mutated index must round-trip through save/load with its delta rows
/// and tombstones intact — the restored instance answers identically and
/// stays mutable. Runs under "l2" and (when supported) "cosine", whose
/// transform-space rows are the risky persistence path.
inline void check_mutated_serialize_roundtrip(const std::string& backend) {
  auto probe = make_index(backend, suite_options());
  if (!probe->info().supports_mutation || !probe->info().supports_save)
    return;
  const std::vector<std::string> supported = probe->info().supported_metrics;

  for (const std::string& metric : {std::string("l2"), std::string("cosine")}) {
    if (std::find(supported.begin(), supported.end(), metric) ==
        supported.end())
      continue;
    SCOPED_TRACE(backend + " metric=" + metric);
    const index_t dim = 8;
    const Matrix<float> pool = testutil::clustered_matrix(60, dim, 4, 119);
    const Matrix<float> Q = testutil::random_matrix(6, dim, 120);
    IndexOptions options = suite_options();
    options.metric = metric;
    options.max_delta = 64;  // keep the delta un-merged across the save
    options.background_merge = false;

    auto index = make_index(backend, options);
    Matrix<float> X0(40, dim);
    for (index_t i = 0; i < 40; ++i) X0.copy_row_from(pool, i, i);
    index->build(X0);
    Matrix<float> extra(4, dim);
    for (index_t i = 0; i < 4; ++i) extra.copy_row_from(pool, 40 + i, i);
    const std::vector<index_t> extra_ids{50, 60, 70, 80};
    index->insert(extra, extra_ids);
    const std::vector<index_t> dropped{2, 11, 60};
    ASSERT_EQ(index->remove(dropped), 3u);

    const IndexInfo before_info = index->info();
    ASSERT_GT(before_info.delta_rows, 0u);
    ASSERT_GT(before_info.tombstones, 0u);
    const index_t k = 5;
    const KnnResult before = index->knn_search({.queries = &Q, .k = k}).knn;

    std::stringstream stream;
    index->save(stream);
    const auto restored = load_index(stream);
    ASSERT_NE(restored, nullptr);
    EXPECT_EQ(restored->info().backend, backend);
    EXPECT_EQ(restored->info().metric, metric);
    EXPECT_EQ(restored->info().size, before_info.size);
    EXPECT_EQ(restored->info().delta_rows, before_info.delta_rows);
    EXPECT_EQ(restored->info().tombstones, before_info.tombstones);
    EXPECT_TRUE(restored->info().supports_mutation)
        << backend << ": a restored mutable index must stay mutable";
    EXPECT_EQ(restored->live_ids(), index->live_ids());
    const KnnResult after = restored->knn_search({.queries = &Q, .k = k}).knn;
    EXPECT_TRUE(testutil::knn_equal(before, after))
        << backend << ": restored mutated index diverged";

    // The restored instance keeps mutating: a delete and a fresh insert.
    const std::vector<index_t> drop_after{50};
    EXPECT_EQ(restored->remove(drop_after), 1u);
    Matrix<float> one(1, dim);
    one.copy_row_from(pool, 44, 0);
    const std::vector<index_t> new_id{90};
    EXPECT_NO_THROW(restored->insert(one, new_id));
    EXPECT_EQ(restored->info().size, before_info.size);
  }
}

// ------------------------------------------ generic metric-space matrix ---
//
// The payload counterpart of the dense checks above: every backend that
// declares supported_spaces must serve each registered metric space
// (strings under "edit", graph nodes under "graph-sp", user functors) with
// the same contracts the dense suite pins — exactness against an
// independent naive reference including tie order, the uniform
// request-error shapes, serialize round-trips, and sharded bit-parity.
// test_conformance.cpp instantiates GenericSpaceConformanceTest over the
// payload-capable subset of the registry, with its own coverage gate.

/// A named (dataset, queries) pair of one payload kind. Queries use the
/// same payload encoding Dataset::item() exposes.
struct PayloadDataset {
  std::string name;
  metricspace::DatasetHandle data;
  std::vector<std::string> queries;
};

/// The 8-byte little-endian node-id payload — the graph-space query
/// encoding (dataset.hpp).
inline std::string encoded_node(std::uint64_t id) {
  std::string payload(8, '\0');
  for (int b = 0; b < 8; ++b)
    payload[b] = static_cast<char>((id >> (8 * b)) & 0xffu);
  return payload;
}

/// Clustered word list (a few base words plus 1-2 single-character
/// mutations each): the string analogue of the dense suite's blob
/// datasets, with the low intrinsic dimension RBC pruning exploits.
inline std::vector<std::string> payload_words(index_t count, index_t bases,
                                              std::uint64_t seed) {
  Rng rng(seed);
  std::vector<std::string> base(bases);
  for (auto& b : base) {
    b.resize(12 + rng.uniform_index(8));
    for (auto& ch : b) ch = static_cast<char>('a' + rng.uniform_index(26));
  }
  std::vector<std::string> words(count);
  for (auto& w : words) {
    w = base[rng.uniform_index(bases)];
    const index_t mutations = 1 + rng.uniform_index(2);
    for (index_t m = 0; m < mutations; ++m)
      w[rng.uniform_index(static_cast<index_t>(w.size()))] =
          static_cast<char>('a' + rng.uniform_index(26));
  }
  return words;
}

/// The suite's fixed payload datasets per dataset kind: clustered strings,
/// strings with duplicated items (guaranteed distance ties), a chord-ring
/// graph over every node, and the same style of graph over a node subset
/// (exercising the element -> node-id remap). Queries come from the same
/// distribution (held-out words / arbitrary valid nodes). Unknown kinds —
/// user-registered spaces in other test binaries — get an empty list;
/// check_payload_space_coverage pins the shipped kinds non-empty.
inline std::vector<PayloadDataset> payload_datasets(std::string_view kind) {
  std::vector<PayloadDataset> sets;
  if (kind == "strings") {
    sets.push_back({"strings-clustered",
                    metricspace::make_string_dataset(payload_words(260, 9, 201)),
                    payload_words(18, 9, 202)});
    auto words = payload_words(90, 5, 203);
    words.insert(words.end(), words.begin(), words.begin() + 45);  // ties
    sets.push_back({"strings-ties",
                    metricspace::make_string_dataset(std::move(words)),
                    payload_words(14, 5, 204)});
  } else if (kind == "graph") {
    // Ring with random chords: connected, irregular shortest paths.
    const auto make_edges = [](index_t n, std::uint64_t seed) {
      Rng rng(seed);
      std::vector<metricspace::GraphEdge> edges;
      for (index_t i = 0; i < n; ++i)
        edges.push_back({i, (i + 1) % n, rng.uniform_float(0.5f, 2.0f)});
      for (index_t e = 0; e < n / 2; ++e) {
        const index_t u = rng.uniform_index(n), v = rng.uniform_index(n);
        if (u != v) edges.push_back({u, v, rng.uniform_float(1.0f, 4.0f)});
      }
      return edges;
    };
    const index_t n = 160;
    std::vector<std::string> queries;
    Rng rng(205);
    for (index_t q = 0; q < 15; ++q)
      queries.push_back(encoded_node(rng.uniform_index(n)));
    sets.push_back({"graph-ring",
                    metricspace::make_graph_dataset(n, make_edges(n, 206)),
                    queries});
    std::vector<index_t> subset;
    for (index_t i = 0; i < n; i += 3) subset.push_back(i);
    // Same query nodes: elements are the subset, but distances run in the
    // full graph, so non-indexed query nodes are legal.
    sets.push_back({"graph-subset",
                    metricspace::make_graph_dataset(n, make_edges(n, 207),
                                                    std::move(subset)),
                    queries});
  }
  return sets;
}

/// Naive exact k-NN reference over a bound metric space, under the
/// library's (distance, id) order and its double -> dist_t narrowing —
/// deliberately a straight loop over std::sort, sharing no code with the
/// generic backend's search structures.
inline KnnResult payload_reference_knn(const std::string& metric,
                                       const metricspace::DatasetHandle& data,
                                       const std::vector<std::string>& queries,
                                       index_t k) {
  const std::unique_ptr<metricspace::Space> space =
      metricspace::bind_space(metric, data);
  const auto nq = static_cast<index_t>(queries.size());
  KnnResult result(nq, k);
  for (index_t qi = 0; qi < nq; ++qi) {
    std::vector<std::pair<dist_t, index_t>> all;
    all.reserve(space->size());
    for (index_t j = 0; j < space->size(); ++j)
      all.emplace_back(
          static_cast<dist_t>(
              space->query_distance(queries[static_cast<std::size_t>(qi)], j)),
          j);
    std::sort(all.begin(), all.end());
    for (index_t j = 0; j < k; ++j) {
      if (static_cast<std::size_t>(j) < all.size()) {
        result.dists.at(qi, j) = all[static_cast<std::size_t>(j)].first;
        result.ids.at(qi, j) = all[static_cast<std::size_t>(j)].second;
      } else {
        result.dists.at(qi, j) = kInfDist;
        result.ids.at(qi, j) = kInvalidIndex;
      }
    }
  }
  return result;
}

/// Recall@1 by rank-0 *distance* — the acceptance measure for approximate
/// backends over payload spaces, where integral distances make large tie
/// groups the norm (an equally-near different id is a correct answer).
inline double payload_recall_at_1(const KnnResult& result,
                                  const KnnResult& exact) {
  index_t agree = 0;
  for (index_t qi = 0; qi < result.ids.rows(); ++qi)
    if (result.dists.at(qi, 0) == exact.dists.at(qi, 0)) ++agree;
  return result.ids.rows() == 0
             ? 1.0
             : static_cast<double>(agree) / result.ids.rows();
}

/// The payload build options: the dense suite options plus the space name.
inline IndexOptions payload_suite_options(const std::string& space_name) {
  IndexOptions options = suite_options();
  options.metric = space_name;
  return options;
}

/// Every space in supported_spaces must resolve in the registry and have
/// matrix datasets — the "declaring a space *is* opting into the matrix"
/// gate, mirroring what ConformanceCoverage does for backends.
inline void check_payload_space_coverage(const std::string& backend) {
  const std::vector<std::string> supported =
      make_index(backend, suite_options())->info().supported_spaces;
  ASSERT_FALSE(supported.empty()) << backend;
  for (const std::string& name : supported) {
    const metricspace::SpaceEntry* entry = metricspace::find_space(name);
    ASSERT_NE(entry, nullptr)
        << backend << " declares unregistered space '" << name << "'";
    EXPECT_FALSE(entry->cost_unit.empty()) << name;
    EXPECT_FALSE(payload_datasets(entry->dataset_kind).empty())
        << "space '" << name << "' (kind '" << entry->dataset_kind
        << "') has no conformance datasets";
  }
}

/// Exact backends must equal the naive per-space reference including tie
/// order; approximate backends must keep a sane recall@1. Also pins the
/// payload info surface (payload flag, dim 0, cost unit, dense metrics
/// cleared).
inline void check_payload_answers(const std::string& backend) {
  const std::vector<std::string> supported =
      make_index(backend, suite_options())->info().supported_spaces;
  for (const std::string& name : supported) {
    const metricspace::SpaceEntry* entry = metricspace::find_space(name);
    ASSERT_NE(entry, nullptr) << name;
    for (const PayloadDataset& data : payload_datasets(entry->dataset_kind)) {
      SCOPED_TRACE(backend + " space=" + name + " on " + data.name);
      auto index = make_index(backend, payload_suite_options(name));
      index->build_payload(data.data);
      const IndexInfo info = index->info();
      EXPECT_TRUE(info.payload);
      EXPECT_EQ(info.metric, name);
      EXPECT_EQ(info.dim, 0u);
      EXPECT_EQ(info.size, data.data->size());
      EXPECT_EQ(info.cost_unit, entry->cost_unit);
      EXPECT_TRUE(info.supported_metrics.empty())
          << backend << ": payload instances must not advertise dense metrics";
      for (index_t k : {index_t{1}, index_t{5}}) {
        const KnnResult reference =
            payload_reference_knn(name, data.data, data.queries, k);
        PayloadSearchRequest request{.queries = &data.queries, .k = k};
        request.options.metric = name;  // assert-the-built-metric contract
        const SearchResponse response = index->knn_search_payload(request);
        ASSERT_EQ(response.knn.ids.rows(), data.queries.size());
        ASSERT_EQ(response.knn.ids.cols(), k);
        if (info.exact) {
          EXPECT_TRUE(testutil::knn_equal(reference, response.knn))
              << backend << " diverged from the " << name
              << " reference at k=" << k;
        } else {
          EXPECT_GT(payload_recall_at_1(response.knn, reference), 1.0 / 3.0)
              << backend << " recall collapsed under " << name;
        }
      }
    }
  }
}

/// The unified payload request-error contract: the dense error shapes
/// (unbuilt, null queries, k == 0, k > n) carried over verbatim, plus the
/// payload-specific ones — dense entry points on a payload build, payload
/// entry points on a dense build, dataset-kind mismatches, and per-space
/// query-payload validation.
inline void check_payload_error_contract(const std::string& backend) {
  const std::vector<std::string> words = payload_words(30, 4, 210);
  const metricspace::DatasetHandle strings =
      metricspace::make_string_dataset(words);
  const std::vector<std::string> queries{"abc", "abd"};

  auto index = make_index(backend, payload_suite_options("edit"));
  EXPECT_THROW(
      (void)index->knn_search_payload({.queries = &queries, .k = 1}),
      std::invalid_argument)
      << backend << ": unbuilt payload index";
  const Matrix<float> X = testutil::random_matrix(10, 4, 211);
  EXPECT_THROW(index->build(X), std::invalid_argument)
      << backend << ": dense build on a payload metric";
  EXPECT_THROW(index->build_payload(nullptr), std::invalid_argument)
      << backend << ": null dataset handle";
  const metricspace::DatasetHandle graph = metricspace::make_graph_dataset(
      8, {{0, 1, 1.0f}, {1, 2, 1.0f}, {2, 3, 1.0f}, {3, 4, 1.0f},
          {4, 5, 1.0f}, {5, 6, 1.0f}, {6, 7, 1.0f}});
  EXPECT_THROW(index->build_payload(graph), std::invalid_argument)
      << backend << ": dataset-kind mismatch";

  index->build_payload(strings);
  EXPECT_THROW((void)index->knn_search({.queries = &X, .k = 1}),
               std::invalid_argument)
      << backend << ": dense search on a payload build";
  EXPECT_THROW(
      (void)index->knn_search_payload({.queries = nullptr, .k = 1}),
      std::invalid_argument)
      << backend << ": null queries";
  EXPECT_THROW(
      (void)index->knn_search_payload({.queries = &queries, .k = 0}),
      std::invalid_argument)
      << backend << ": k == 0";
  try {
    (void)index->knn_search_payload(
        {.queries = &queries, .k = strings->size() + 1});
    FAIL() << backend << " accepted k > database size";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("exceeds database size"),
              std::string::npos)
        << backend << " threw a different message: " << e.what();
  }
  PayloadSearchRequest mismatched{.queries = &queries, .k = 1};
  mismatched.options.metric = "l2";
  EXPECT_THROW((void)index->knn_search_payload(mismatched),
               std::invalid_argument)
      << backend << ": metric-assertion mismatch must throw";
  PayloadSearchRequest asserted{.queries = &queries, .k = 1};
  asserted.options.metric = "edit";
  EXPECT_NO_THROW((void)index->knn_search_payload(asserted))
      << backend << ": asserting the built metric must pass";

  // Per-space query validation: a graph query must be an 8-byte node id.
  auto graph_index = make_index(backend, payload_suite_options("graph-sp"));
  graph_index->build_payload(graph);
  const std::vector<std::string> bad_queries{"xyz"};
  try {
    (void)graph_index->knn_search_payload({.queries = &bad_queries, .k = 1});
    FAIL() << backend << " accepted a malformed graph query payload";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("query"), std::string::npos)
        << backend << " threw a different message: " << e.what();
  }

  // The reverse direction: a dense build rejects the payload entry points
  // with the uniform unsupported shape (runtime_error, like save()).
  auto dense = make_index(backend, suite_options());
  EXPECT_THROW(dense->build_payload(strings), std::runtime_error)
      << backend << ": payload build on a dense-metric instance";
  dense->build(X);
  EXPECT_THROW(
      (void)dense->knn_search_payload({.queries = &queries, .k = 1}),
      std::runtime_error)
      << backend << ": payload search on a dense build";
}

/// save -> load_index -> search must reproduce payload answers exactly, for
/// every supported space.
inline void check_payload_serialize_roundtrip(const std::string& backend) {
  const std::vector<std::string> supported =
      make_index(backend, suite_options())->info().supported_spaces;
  for (const std::string& name : supported) {
    const metricspace::SpaceEntry* entry = metricspace::find_space(name);
    ASSERT_NE(entry, nullptr) << name;
    const std::vector<PayloadDataset> sets =
        payload_datasets(entry->dataset_kind);
    ASSERT_FALSE(sets.empty()) << name;
    const PayloadDataset& data = sets.front();
    SCOPED_TRACE(backend + " space=" + name + " on " + data.name);
    auto index = make_index(backend, payload_suite_options(name));
    index->build_payload(data.data);
    if (!index->info().supports_save) {
      std::stringstream reject;
      EXPECT_THROW(index->save(reject), std::runtime_error) << backend;
      continue;
    }
    const index_t k = 4;
    const KnnResult before =
        index->knn_search_payload({.queries = &data.queries, .k = k}).knn;
    std::stringstream stream;
    index->save(stream);
    const auto restored = load_index(stream);
    ASSERT_NE(restored, nullptr);
    EXPECT_EQ(restored->info().backend, backend);
    EXPECT_EQ(restored->info().metric, name);
    EXPECT_TRUE(restored->info().payload);
    EXPECT_EQ(restored->info().size, data.data->size());
    const KnnResult after =
        restored->knn_search_payload({.queries = &data.queries, .k = k}).knn;
    EXPECT_TRUE(testutil::knn_equal(before, after))
        << backend << ": restored payload index diverged";
  }
}

/// The sharded composites' payload obligation: bit-identical (ids,
/// distances, tie order) to the wrapped backend at shard counts {1, 2, 7}
/// under both partition schemes, on every dataset of every supported space
/// — enforced for exact inners, exactly like the dense parity check.
inline void check_payload_sharded_parity(const std::string& backend) {
  constexpr std::string_view kPrefix = "sharded:";
  if (backend.substr(0, kPrefix.size()) != kPrefix) return;
  const std::string inner = backend.substr(kPrefix.size());
  const std::vector<std::string> supported =
      make_index(inner, suite_options())->info().supported_spaces;

  for (const std::string& name : supported) {
    const metricspace::SpaceEntry* entry = metricspace::find_space(name);
    ASSERT_NE(entry, nullptr) << name;
    for (const PayloadDataset& data : payload_datasets(entry->dataset_kind)) {
      auto reference_index = make_index(inner, payload_suite_options(name));
      reference_index->build_payload(data.data);
      if (!reference_index->info().exact) return;
      const index_t k = 5;
      const KnnResult reference =
          reference_index->knn_search_payload({.queries = &data.queries,
                                               .k = k}).knn;

      for (index_t shards : {index_t{1}, index_t{2}, index_t{7}}) {
        for (const char* partition : {"contiguous", "strided"}) {
          SCOPED_TRACE(backend + " space=" + name + " on " + data.name +
                       " shards=" + std::to_string(shards) + " partition=" +
                       partition);
          IndexOptions options = payload_suite_options(name);
          options.num_shards = shards;
          options.partition = partition;
          auto sharded = make_index(backend, options);
          sharded->build_payload(data.data);
          const KnnResult result =
              sharded->knn_search_payload({.queries = &data.queries,
                                           .k = k}).knn;
          EXPECT_TRUE(testutil::knn_equal(reference, result))
              << backend << " is not bit-identical to " << inner;
        }
      }
    }
  }
}

/// Concurrent const payload searches: same contract as the dense check —
/// every thread must see what a lone caller sees.
inline void check_payload_concurrent_search(const std::string& backend) {
  const std::vector<PayloadDataset> sets = payload_datasets("strings");
  const PayloadDataset& data = sets.front();
  auto index = make_index(backend, payload_suite_options("edit"));
  index->build_payload(data.data);
  const index_t k = 3;
  const KnnResult reference =
      index->knn_search_payload({.queries = &data.queries, .k = k}).knn;

  constexpr int kThreads = 4, kRounds = 3;
  std::vector<int> mismatches(kThreads, 0);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t)
    threads.emplace_back([&, t] {
      for (int round = 0; round < kRounds; ++round) {
        const KnnResult result =
            index->knn_search_payload({.queries = &data.queries, .k = k}).knn;
        if (!testutil::knn_equal(reference, result)) ++mismatches[t];
      }
    });
  for (std::thread& thread : threads) thread.join();
  for (int t = 0; t < kThreads; ++t)
    EXPECT_EQ(mismatches[t], 0)
        << backend << ": thread " << t << " saw diverging payload results";
}

/// The parameterized suite types; test_conformance.cpp instantiates them
/// (ConformanceTest from registered_backends(), GenericSpaceConformanceTest
/// from its payload-capable subset) and coverage tests assert nothing was
/// skipped.
class ConformanceTest : public ::testing::TestWithParam<std::string> {};
class GenericSpaceConformanceTest
    : public ::testing::TestWithParam<std::string> {};

/// The payload-capable subset of the registry — the instantiation source
/// for GenericSpaceConformanceTest.
inline std::vector<std::string> payload_capable_backends() {
  std::vector<std::string> out;
  for (const std::string& backend : registered_backends())
    if (!make_index(backend, suite_options())->info().supported_spaces.empty())
      out.push_back(backend);
  return out;
}

/// gtest-safe test-name suffix for a backend name.
inline std::string sanitized(std::string name) {
  for (char& c : name)
    if (c == '-' || c == ':') c = '_';
  return name;
}

}  // namespace rbc::conformance
