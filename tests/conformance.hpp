// Cross-backend conformance harness: one parameterized suite that every
// factory-registered backend must pass.
//
// Before this harness the per-backend contracts (exactness vs brute force,
// the k > n error shape, serialize round-trips, thread-safety of const
// search) were asserted by copy-pasted per-backend tests that new backends
// could silently skip. Here the checks are written once against the unified
// rbc::Index interface and instantiated from rbc::registered_backends(), so
// registering a backend *is* opting into the full suite — including the
// sharded:* composites, whose extra bit-parity obligation (identical ids,
// distances, and tie order to the wrapped backend at several shard counts)
// is enforced here too.
//
// test_conformance.cpp instantiates the suite; the checks live in this
// header so other tests (stress, determinism) can reuse the datasets and
// reference helpers.
#pragma once

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "api/api.hpp"
#include "api/metrics.hpp"
#include "test_util.hpp"

namespace rbc::conformance {

/// A named (database, queries) pair. The suite runs every check on several
/// datasets with different neighborhood structure; `ties` marks the one
/// with duplicated rows, where exact backends must reproduce the
/// (distance, id) tie order bit-for-bit.
struct Dataset {
  std::string name;
  Matrix<float> X;
  Matrix<float> Q;
};

/// The suite's fixed datasets: clustered blobs (pruning-friendly), uniform
/// noise (pruning-hostile), and clustered data with duplicated rows
/// (guaranteed distance ties).
inline std::vector<Dataset> datasets() {
  std::vector<Dataset> sets;
  {
    auto [X, Q] =
        testutil::split_rows(testutil::clustered_matrix(560, 12, 6, 101), 520);
    sets.push_back({"clustered", std::move(X), std::move(Q)});
  }
  {
    auto [X, Q] =
        testutil::split_rows(testutil::random_matrix(410, 9, 102), 380);
    sets.push_back({"uniform", std::move(X), std::move(Q)});
  }
  {
    // Held-out in-distribution queries (the paper's protocol) so the
    // recall bound is meaningful for approximate backends too; the
    // database rows are duplicated for guaranteed distance ties.
    auto [base, Q] =
        testutil::split_rows(testutil::clustered_matrix(230, 8, 4, 103), 200);
    Matrix<float> X = testutil::with_duplicates(base, 160);
    sets.push_back({"ties", std::move(X), std::move(Q)});
  }
  return sets;
}

/// Build options every backend accepts on the suite's small datasets: a
/// fixed seed (reproducible RBC sampling), a small SIMT pool for the device
/// backends, and a shard count that exercises clamping without dwarfing
/// the data.
inline IndexOptions suite_options() {
  IndexOptions options;
  options.rbc.seed = 7;
  options.gpu_workers = 2;
  options.num_shards = 3;
  return options;
}

/// Recall@1 of `result` against the exact reference (both over the same
/// queries) — the acceptance measure for approximate backends.
inline double recall_at_1(const KnnResult& result, const KnnResult& exact) {
  index_t agree = 0;
  for (index_t qi = 0; qi < result.ids.rows(); ++qi)
    if (result.ids.at(qi, 0) == exact.ids.at(qi, 0)) ++agree;
  return result.ids.rows() == 0
             ? 1.0
             : static_cast<double>(agree) / result.ids.rows();
}

/// Builds the backend over X with the suite options.
inline std::unique_ptr<Index> build_index(const std::string& backend,
                                          const Matrix<float>& X) {
  auto index = make_index(backend, suite_options());
  index->build(X);
  return index;
}

// ---------------------------------------------------------------- checks ---

/// Exact backends must equal the naive reference including tie order;
/// approximate backends must keep a sane recall@1.
inline void check_answers(const std::string& backend) {
  for (const Dataset& data : datasets()) {
    SCOPED_TRACE(backend + " on " + data.name);
    auto index = build_index(backend, data.X);
    for (index_t k : {index_t{1}, index_t{5}}) {
      const KnnResult reference = testutil::naive_knn(data.Q, data.X, k);
      const SearchResponse response =
          index->knn_search({.queries = &data.Q, .k = k});
      ASSERT_EQ(response.knn.ids.rows(), data.Q.rows());
      ASSERT_EQ(response.knn.ids.cols(), k);
      if (index->info().exact) {
        EXPECT_TRUE(testutil::knn_equal(reference, response.knn))
            << backend << " diverged from brute force at k=" << k;
      } else {
        EXPECT_GT(recall_at_1(response.knn, reference), 1.0 / 3.0)
            << backend << " recall collapsed at k=" << k;
      }
    }
  }
}

/// The unified request-error contract: identical conditions and message
/// shape across every backend (see Index::knn_search).
inline void check_error_contract(const std::string& backend) {
  const Matrix<float> X = testutil::random_matrix(50, 6, 105);
  const Matrix<float> Q = testutil::random_matrix(5, 6, 106);
  const Matrix<float> wrong_dim = testutil::random_matrix(5, 4, 107);

  auto index = make_index(backend, suite_options());
  EXPECT_THROW((void)index->knn_search({.queries = &Q, .k = 1}),
               std::invalid_argument)
      << backend << ": unbuilt index";
  index->build(X);
  EXPECT_THROW((void)index->knn_search({.queries = nullptr, .k = 1}),
               std::invalid_argument)
      << backend << ": null queries";
  EXPECT_THROW((void)index->knn_search({.queries = &Q, .k = 0}),
               std::invalid_argument)
      << backend << ": k == 0";
  EXPECT_THROW((void)index->knn_search({.queries = &wrong_dim, .k = 1}),
               std::invalid_argument)
      << backend << ": dimension mismatch";
  try {
    (void)index->knn_search({.queries = &Q, .k = X.rows() + 1});
    FAIL() << backend << " accepted k > database size";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("exceeds database size"),
              std::string::npos)
        << backend << " threw a different message: " << e.what();
  }
}

/// Degenerate-but-legal inputs: an empty query block answers with an empty
/// response, and a one-point database answers k = 1.
inline void check_degenerate_inputs(const std::string& backend) {
  const Matrix<float> X = testutil::clustered_matrix(40, 5, 3, 108);
  auto index = build_index(backend, X);

  const Matrix<float> no_queries(0, 5);
  const SearchResponse empty =
      index->knn_search({.queries = &no_queries, .k = 2});
  EXPECT_EQ(empty.knn.ids.rows(), 0u) << backend << ": empty query block";

  Matrix<float> one_point(1, 5);
  for (index_t j = 0; j < 5; ++j) one_point.at(0, j) = 0.5f;
  auto tiny = make_index(backend, suite_options());
  tiny->build(one_point);
  const Matrix<float> q = testutil::random_matrix(3, 5, 109);
  const SearchResponse r = tiny->knn_search({.queries = &q, .k = 1});
  for (index_t qi = 0; qi < q.rows(); ++qi)
    EXPECT_EQ(r.knn.ids.at(qi, 0), 0u)
        << backend << ": one-point database must answer id 0";
}

/// save -> load_index -> search must reproduce the original answers
/// exactly. Skips backends that declare !supports_save (after checking
/// that save() then throws as documented).
inline void check_serialize_roundtrip(const std::string& backend) {
  const Dataset data = std::move(datasets().front());
  auto index = build_index(backend, data.X);
  const index_t k = 4;
  const KnnResult before =
      index->knn_search({.queries = &data.Q, .k = k}).knn;

  std::stringstream stream;
  if (!index->info().supports_save) {
    EXPECT_THROW(index->save(stream), std::runtime_error)
        << backend << ": unsupported save must throw, not silently no-op";
    return;
  }
  index->save(stream);
  const auto restored = load_index(stream);
  ASSERT_NE(restored, nullptr);
  EXPECT_EQ(restored->info().backend, backend);
  EXPECT_EQ(restored->info().size, data.X.rows());
  const KnnResult after =
      restored->knn_search({.queries = &data.Q, .k = k}).knn;
  EXPECT_TRUE(testutil::knn_equal(before, after))
      << backend << ": restored index diverged";
}

/// Concurrent const searches (the contract SearchService relies on): every
/// thread must see the same answers a lone caller gets.
inline void check_concurrent_search(const std::string& backend) {
  const Dataset data = std::move(datasets().front());
  auto index = build_index(backend, data.X);
  const index_t k = 3;
  const KnnResult reference =
      index->knn_search({.queries = &data.Q, .k = k}).knn;

  constexpr int kThreads = 4, kRounds = 3;
  std::vector<int> mismatches(kThreads, 0);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t)
    threads.emplace_back([&, t] {
      for (int round = 0; round < kRounds; ++round) {
        const KnnResult result =
            index->knn_search({.queries = &data.Q, .k = k}).knn;
        if (!testutil::knn_equal(reference, result)) ++mismatches[t];
      }
    });
  for (std::thread& thread : threads) thread.join();
  for (int t = 0; t < kThreads; ++t)
    EXPECT_EQ(mismatches[t], 0)
        << backend << ": thread " << t << " saw diverging results";
}

/// The sharded composites' extra obligation: bit-identical (ids, distances,
/// tie order) to the wrapped backend at shard counts {1, 2, 7} under both
/// partition schemes, on every dataset — enforced for exact inners, where
/// the answer is unique. (Approximate inners legitimately answer from a
/// different per-shard structure; check_answers already bounds their
/// recall.) No-op for non-sharded backends.
inline void check_sharded_bit_parity(const std::string& backend) {
  constexpr std::string_view kPrefix = "sharded:";
  if (backend.substr(0, kPrefix.size()) != kPrefix) return;
  const std::string inner = backend.substr(kPrefix.size());

  for (const Dataset& data : datasets()) {
    auto reference_index = build_index(inner, data.X);
    if (!reference_index->info().exact) return;
    const index_t k = 5;
    const KnnResult reference =
        reference_index->knn_search({.queries = &data.Q, .k = k}).knn;

    for (index_t shards : {index_t{1}, index_t{2}, index_t{7}}) {
      for (const char* partition : {"contiguous", "strided"}) {
        SCOPED_TRACE(backend + " on " + data.name + " shards=" +
                     std::to_string(shards) + " partition=" + partition);
        IndexOptions options = suite_options();
        options.num_shards = shards;
        options.partition = partition;
        auto sharded = make_index(backend, options);
        sharded->build(data.X);
        EXPECT_EQ(sharded->info().shards, std::min(shards, data.X.rows()));
        const KnnResult result =
            sharded->knn_search({.queries = &data.Q, .k = k}).knn;
        EXPECT_TRUE(testutil::knn_equal(reference, result))
            << backend << " is not bit-identical to " << inner;
      }
    }
  }
}

// ------------------------------------------------- metric x backend matrix ---

/// Reference k-NN under a registry metric, mirroring the backends' exact
/// computation path (the cosine case uses the same shared normalize() and
/// distance conversion the backends use, so exact backends must match it
/// bit for bit).
inline KnnResult metric_reference_knn(const Matrix<float>& Q,
                                      const Matrix<float>& X,
                                      metric::Kind kind, index_t k) {
  switch (kind) {
    case metric::Kind::kL2:
      return testutil::naive_knn(Q, X, k, Euclidean{});
    case metric::Kind::kL1:
      return testutil::naive_knn(Q, X, k, L1{});
    case metric::Kind::kCosine: {
      KnnResult r = testutil::naive_knn(metric::normalized_clone(Q),
                                        metric::normalized_clone(X), k,
                                        Euclidean{});
      metric::cosine_distances_from_l2(r.dists);
      return r;
    }
    case metric::Kind::kIp:
      return testutil::naive_knn(Q, X, k, InnerProduct{});
  }
  return KnnResult(Q.rows(), k);
}

/// Every metric a backend declares in supported_metrics must actually
/// work: info().metric reports it, exact backends reproduce the per-metric
/// scalar reference including tie order, approximate backends keep a sane
/// recall@1 against that reference, and a request asserting the built
/// metric passes the shared validator.
inline void check_metric_matrix(const std::string& backend) {
  const std::vector<std::string> supported =
      make_index(backend, suite_options())->info().supported_metrics;
  ASSERT_FALSE(supported.empty()) << backend;
  for (const std::string& name : supported) {
    metric::Kind kind{};
    ASSERT_TRUE(metric::lookup(name, kind))
        << backend << " declares unknown metric '" << name << "'";
    for (const Dataset& data : datasets()) {
      SCOPED_TRACE(backend + " metric=" + name + " on " + data.name);
      IndexOptions options = suite_options();
      options.metric = name;
      auto index = make_index(backend, options);
      index->build(data.X);
      EXPECT_EQ(index->info().metric, name);
      const index_t k = 4;
      const KnnResult reference =
          metric_reference_knn(data.Q, data.X, kind, k);
      SearchRequest request{.queries = &data.Q, .k = k};
      request.options.metric = name;  // assert-the-built-metric contract
      const SearchResponse response = index->knn_search(request);
      if (index->info().exact) {
        EXPECT_TRUE(testutil::knn_equal(reference, response.knn))
            << backend << " diverged from the " << name << " reference";
      } else {
        EXPECT_GT(recall_at_1(response.knn, reference), 1.0 / 3.0)
            << backend << " recall collapsed under " << name;
      }
    }
  }
}

/// The unsupported-metric contract: every registry metric a backend does
/// NOT declare must be rejected at make_index time with the uniform
/// std::invalid_argument shape, as must names outside the registry; and a
/// request asserting a metric other than the built one must fail in the
/// shared validator.
inline void check_unsupported_metric_contract(const std::string& backend) {
  const std::vector<std::string> supported =
      make_index(backend, suite_options())->info().supported_metrics;
  auto expect_rejected = [&](const std::string& name) {
    IndexOptions options = suite_options();
    options.metric = name;
    try {
      (void)make_index(backend, options);
      FAIL() << backend << " accepted metric '" << name << "'";
    } catch (const std::invalid_argument& e) {
      EXPECT_NE(std::string(e.what()).find("unsupported metric"),
                std::string::npos)
          << backend << " threw a different message: " << e.what();
    }
  };
  for (const metric::Entry& entry : metric::registry())
    if (std::find(supported.begin(), supported.end(), entry.name) ==
        supported.end())
      expect_rejected(entry.name);
  expect_rejected("no-such-metric");

  // Metric-assertion mismatch: the shared validator, not the backend, must
  // reject a request that assumes a different metric than the index holds.
  const Matrix<float> X = testutil::clustered_matrix(40, 5, 3, 110);
  const Matrix<float> Q = testutil::random_matrix(3, 5, 111);
  auto index = build_index(backend, X);  // built with the default "l2"
  SearchRequest mismatched{.queries = &Q, .k = 1};
  mismatched.options.metric = "cosine";
  EXPECT_THROW((void)index->knn_search(mismatched), std::invalid_argument)
      << backend << ": metric-assertion mismatch must throw";
  SearchRequest asserted{.queries = &Q, .k = 1};
  asserted.options.metric = "l2";
  EXPECT_NO_THROW((void)index->knn_search(asserted))
      << backend << ": asserting the built metric must pass";
}

/// Sharded bit-parity under "cosine" (the satellite obligation of the
/// metric redesign): the composite must stay bit-identical to its inner
/// backend when both run the normalized-L2 cosine path — the merge
/// operates on converted distances, so this pins the conversion happening
/// inside the shards, once, not per layer. No-op for non-sharded backends
/// and inners without cosine.
inline void check_sharded_metric_parity(const std::string& backend) {
  constexpr std::string_view kPrefix = "sharded:";
  if (backend.substr(0, kPrefix.size()) != kPrefix) return;
  const std::string inner = backend.substr(kPrefix.size());
  const std::vector<std::string> supported =
      make_index(inner, suite_options())->info().supported_metrics;
  if (std::find(supported.begin(), supported.end(), "cosine") ==
      supported.end())
    return;

  for (const Dataset& data : datasets()) {
    IndexOptions inner_options = suite_options();
    inner_options.metric = "cosine";
    auto reference_index = make_index(inner, inner_options);
    reference_index->build(data.X);
    if (!reference_index->info().exact) return;
    const index_t k = 5;
    const KnnResult reference =
        reference_index->knn_search({.queries = &data.Q, .k = k}).knn;

    for (index_t shards : {index_t{2}, index_t{7}}) {
      for (const char* partition : {"contiguous", "strided"}) {
        SCOPED_TRACE(backend + " cosine on " + data.name + " shards=" +
                     std::to_string(shards) + " partition=" + partition);
        IndexOptions options = suite_options();
        options.metric = "cosine";
        options.num_shards = shards;
        options.partition = partition;
        auto sharded = make_index(backend, options);
        sharded->build(data.X);
        EXPECT_EQ(sharded->info().metric, "cosine");
        const KnnResult result =
            sharded->knn_search({.queries = &data.Q, .k = k}).knn;
        EXPECT_TRUE(testutil::knn_equal(reference, result))
            << backend << " cosine is not bit-identical to " << inner;
      }
    }
  }
}

/// Serialize round-trips must preserve the metric: a restored index
/// reports the same info().metric and answers identically under it ("l2"
/// is covered by check_serialize_roundtrip; this covers the rest).
inline void check_metric_serialize_roundtrip(const std::string& backend) {
  const Dataset data = std::move(datasets().front());
  const std::vector<std::string> supported =
      make_index(backend, suite_options())->info().supported_metrics;
  for (const std::string& name : supported) {
    if (name == "l2") continue;
    SCOPED_TRACE(backend + " metric=" + name);
    IndexOptions options = suite_options();
    options.metric = name;
    auto index = make_index(backend, options);
    index->build(data.X);
    if (!index->info().supports_save) continue;
    const index_t k = 4;
    const KnnResult before =
        index->knn_search({.queries = &data.Q, .k = k}).knn;
    std::stringstream stream;
    index->save(stream);
    const auto restored = load_index(stream);
    ASSERT_NE(restored, nullptr);
    EXPECT_EQ(restored->info().backend, backend);
    EXPECT_EQ(restored->info().metric, name);
    const KnnResult after =
        restored->knn_search({.queries = &data.Q, .k = k}).knn;
    EXPECT_TRUE(testutil::knn_equal(before, after))
        << backend << ": restored " << name << " index diverged";
  }
}

/// The parameterized suite type; test_conformance.cpp instantiates it from
/// registered_backends() and a coverage test asserts nothing was skipped.
class ConformanceTest : public ::testing::TestWithParam<std::string> {};

/// gtest-safe test-name suffix for a backend name.
inline std::string sanitized(std::string name) {
  for (char& c : name)
    if (c == '-' || c == ':') c = '_';
  return name;
}

}  // namespace rbc::conformance
