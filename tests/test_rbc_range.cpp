// Exact range search: the returned set must equal a linear scan exactly for
// every radius, including boundary-inclusive hits.
#include <gtest/gtest.h>

#include "rbc/rbc.hpp"
#include "test_util.hpp"

namespace rbc {
namespace {

class RangeRadiusTest : public ::testing::TestWithParam<float> {};

TEST_P(RangeRadiusTest, MatchesLinearScan) {
  const float radius = GetParam();
  const Matrix<float> X = testutil::clustered_matrix(1'200, 8, 6, 1);
  const Matrix<float> Q = testutil::random_matrix(25, 8, 2, -6.0f, 6.0f);

  RbcExactIndex<> index;
  index.build(X, {.num_reps = 35, .seed = 3});

  for (index_t qi = 0; qi < Q.rows(); ++qi) {
    const auto expected = testutil::naive_range(Q.row(qi), X, radius);
    const auto actual = index.range_search(Q.row(qi), radius);
    EXPECT_EQ(expected, actual) << "query " << qi << " radius " << radius;
  }
}

INSTANTIATE_TEST_SUITE_P(Radii, RangeRadiusTest,
                         ::testing::Values(0.0f, 0.1f, 0.5f, 1.0f, 2.0f, 5.0f,
                                           20.0f),
                         [](const auto& info) {
                           std::string s = std::to_string(info.param);
                           for (auto& c : s)
                             if (c == '.' || c == '-') c = '_';
                           return "r" + s;
                         });

TEST(RangeSearch, ZeroRadiusFindsExactDuplicates) {
  Matrix<float> base = testutil::random_matrix(100, 5, 4);
  const Matrix<float> X = testutil::with_duplicates(base, 100);
  RbcExactIndex<> index;
  index.build(X, {.num_reps = 14, .seed = 5});

  // Query = point 7; duplicates of 7 are at 7 and 107.
  const auto hits = index.range_search(X.row(7), 0.0f);
  EXPECT_EQ(hits, (std::vector<index_t>{7, 107}));
}

TEST(RangeSearch, HugeRadiusReturnsEverything) {
  const Matrix<float> X = testutil::random_matrix(300, 6, 6);
  RbcExactIndex<> index;
  index.build(X, {.num_reps = 17, .seed = 7});
  const Matrix<float> Q = testutil::random_matrix(1, 6, 8);
  const auto hits = index.range_search(Q.row(0), 1e9f);
  ASSERT_EQ(hits.size(), X.rows());
  for (index_t i = 0; i < X.rows(); ++i) EXPECT_EQ(hits[i], i);
}

TEST(RangeSearch, EmptyResultWhenRadiusTooSmall) {
  const Matrix<float> X = testutil::random_matrix(200, 7, 9, 10.0f, 20.0f);
  RbcExactIndex<> index;
  index.build(X, {.num_reps = 14, .seed = 10});
  Matrix<float> q(1, 7);  // all zeros, far from [10,20]^7
  EXPECT_TRUE(index.range_search(q.row(0), 1.0f).empty());
}

TEST(RangeSearch, PruningStillExactWithL1) {
  const Matrix<float> X = testutil::clustered_matrix(800, 9, 5, 11);
  const Matrix<float> Q = testutil::random_matrix(15, 9, 12, -6.0f, 6.0f);
  RbcExactIndex<L1> index;
  index.build(X, {.num_reps = 28, .seed = 13}, L1{});
  const L1 m{};
  for (index_t qi = 0; qi < Q.rows(); ++qi) {
    std::vector<index_t> expected;
    for (index_t j = 0; j < X.rows(); ++j)
      if (m(Q.row(qi), X.row(j), 9) <= 2.0f) expected.push_back(j);
    EXPECT_EQ(expected, index.range_search(Q.row(qi), 2.0f));
  }
}

}  // namespace
}  // namespace rbc
