// Determinism of the sharded composite across shard counts and kernel
// ISAs: the same dataset and seed must produce the identical SearchResponse
// — ids, distances, and tie order — for sharded:rbc-exact at shards
// {1, 2, 7}, for the unsharded backend, and under every available forced
// ISA (the dispatched kernels are prefilters whose survivors are
// re-measured with the scalar metric, so vectorization must never leak
// into results).
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "api/api.hpp"
#include "distance/dispatch.hpp"
#include "test_util.hpp"

namespace rbc {
namespace {

/// The ISAs this host can actually run (scalar always; avx2/avx512 when
/// compiled in and supported). Forcing an unavailable ISA is a no-op, so
/// only available ones are meaningful to pin.
std::vector<dispatch::Isa> testable_isas() {
  std::vector<dispatch::Isa> isas{dispatch::Isa::kScalar};
  for (dispatch::Isa isa : {dispatch::Isa::kAvx2, dispatch::Isa::kAvx512})
    if (dispatch::isa_available(isa)) isas.push_back(isa);
  return isas;
}

TEST(ShardDeterminism, SameSeedSameResponseAcrossShardCountsAndIsas) {
  const auto [X, Q] =
      testutil::split_rows(testutil::clustered_matrix(1'060, 16, 6, 31),
                           1'000);
  const index_t k = 6;

  // Reference: the unsharded backend under forced-scalar dispatch.
  ASSERT_EQ(dispatch::force_isa(dispatch::Isa::kScalar),
            dispatch::Isa::kScalar);
  auto unsharded = make_index("rbc-exact", {.rbc = {.seed = 32}});
  unsharded->build(X);
  const KnnResult reference =
      unsharded->knn_search({.queries = &Q, .k = k}).knn;

  for (dispatch::Isa isa : testable_isas()) {
    ASSERT_EQ(dispatch::force_isa(isa), isa);
    const std::string isa_name = dispatch::isa_name(isa);

    // Unsharded backend, rebuilt from scratch under this ISA.
    auto plain = make_index("rbc-exact", {.rbc = {.seed = 32}});
    plain->build(X);
    EXPECT_TRUE(testutil::knn_equal(
        reference, plain->knn_search({.queries = &Q, .k = k}).knn))
        << "rbc-exact diverged under " << isa_name;

    for (index_t shards : {index_t{1}, index_t{2}, index_t{7}}) {
      SCOPED_TRACE("isa=" + isa_name + " shards=" + std::to_string(shards));
      auto sharded = make_index("sharded:rbc-exact",
                                {.rbc = {.seed = 32}, .num_shards = shards});
      sharded->build(X);
      const SearchResponse response =
          sharded->knn_search({.queries = &Q, .k = k});
      EXPECT_TRUE(testutil::knn_equal(reference, response.knn))
          << "sharded:rbc-exact diverged";

      // A second identical build answers identically too (no hidden
      // run-to-run nondeterminism from the parallel shard build).
      auto again = make_index("sharded:rbc-exact",
                              {.rbc = {.seed = 32}, .num_shards = shards});
      again->build(X);
      EXPECT_TRUE(testutil::knn_equal(
          response.knn, again->knn_search({.queries = &Q, .k = k}).knn))
          << "rebuild diverged";
    }
  }
  dispatch::clear_forced_isa();
}

TEST(ShardDeterminism, StridedAndContiguousPartitionsAgree) {
  const auto [X, Q] =
      testutil::split_rows(testutil::clustered_matrix(640, 10, 5, 33), 600);
  const index_t k = 4;
  KnnResult previous;
  bool have_previous = false;
  for (const char* partition : {"contiguous", "strided"}) {
    auto index = make_index(
        "sharded:rbc-exact",
        {.rbc = {.seed = 34}, .num_shards = 5, .partition = partition});
    index->build(X);
    KnnResult result = index->knn_search({.queries = &Q, .k = k}).knn;
    if (have_previous)
      EXPECT_TRUE(testutil::knn_equal(previous, result))
          << "partition schemes returned different answers";
    previous = std::move(result);
    have_previous = true;
  }
}

}  // namespace
}  // namespace rbc
