#include <gtest/gtest.h>

#include "rbc/knn_graph.hpp"
#include "test_util.hpp"

namespace rbc {
namespace {

TEST(KnnGraph, RowsMatchBruteForceExcludingSelf) {
  const Matrix<float> X = testutil::clustered_matrix(400, 8, 5, 1);
  const KnnResult graph = build_knn_graph(X, 5, {.seed = 2});

  const KnnResult raw = testutil::naive_knn(X, X, 6);
  for (index_t i = 0; i < X.rows(); ++i) {
    index_t out = 0;
    for (index_t j = 0; j < 6 && out < 5; ++j) {
      if (raw.ids.at(i, j) == i) continue;
      EXPECT_EQ(graph.ids.at(i, out), raw.ids.at(i, j)) << "row " << i;
      EXPECT_EQ(graph.dists.at(i, out), raw.dists.at(i, j));
      ++out;
    }
  }
}

TEST(KnnGraph, NoSelfLoops) {
  const Matrix<float> X = testutil::random_matrix(300, 6, 3);
  const KnnResult graph = build_knn_graph(X, 4, {.seed = 4});
  for (index_t i = 0; i < X.rows(); ++i)
    for (index_t j = 0; j < 4; ++j) EXPECT_NE(graph.ids.at(i, j), i);
}

TEST(KnnGraph, DuplicatePointsLinkToEachOther) {
  const Matrix<float> base = testutil::random_matrix(50, 5, 5);
  const Matrix<float> X = testutil::with_duplicates(base, 50);
  const KnnResult graph = build_knn_graph(X, 1, {.seed = 6});
  // Each point's nearest other point is its duplicate (distance 0).
  for (index_t i = 0; i < X.rows(); ++i) {
    EXPECT_EQ(graph.dists.at(i, 0), 0.0f) << i;
    EXPECT_EQ(graph.ids.at(i, 0) % 50, i % 50) << i;
  }
}

TEST(KnnGraph, PadsWhenKExceedsNMinusOne) {
  const Matrix<float> X = testutil::random_matrix(4, 3, 7);
  const KnnResult graph = build_knn_graph(X, 6, {.seed = 8});
  for (index_t i = 0; i < 4; ++i) {
    for (index_t j = 0; j < 3; ++j)
      EXPECT_NE(graph.ids.at(i, j), kInvalidIndex);
    for (index_t j = 3; j < 6; ++j)
      EXPECT_EQ(graph.ids.at(i, j), kInvalidIndex);
  }
}

TEST(KnnGraph, SymmetrizeProducesSortedUniqueUndirectedEdges) {
  const Matrix<float> X = testutil::clustered_matrix(200, 7, 4, 9);
  const KnnResult graph = build_knn_graph(X, 3, {.seed = 10});
  const std::vector<KnnEdge> edges = symmetrize_knn_graph(graph);

  ASSERT_FALSE(edges.empty());
  for (std::size_t e = 0; e < edges.size(); ++e) {
    EXPECT_LT(edges[e].u, edges[e].v);
    if (e > 0) EXPECT_TRUE(edges[e - 1] < edges[e]);  // sorted, no dupes
  }
  // Every directed graph edge appears exactly once undirected.
  std::size_t directed = 0;
  for (index_t i = 0; i < X.rows(); ++i)
    for (index_t j = 0; j < 3; ++j)
      if (graph.ids.at(i, j) != kInvalidIndex) ++directed;
  EXPECT_LE(edges.size(), directed);
  EXPECT_GE(2 * edges.size(), directed);  // at most half collapse as mutual
}

TEST(KnnGraph, L1MetricVariant) {
  const Matrix<float> X = testutil::clustered_matrix(150, 6, 3, 11);
  const KnnResult graph = build_knn_graph(X, 2, {.seed = 12}, L1{});
  const KnnResult raw = testutil::naive_knn(X, X, 3, L1{});
  for (index_t i = 0; i < X.rows(); ++i) {
    index_t out = 0;
    for (index_t j = 0; j < 3 && out < 2; ++j) {
      if (raw.ids.at(i, j) == i) continue;
      EXPECT_EQ(graph.ids.at(i, out), raw.ids.at(i, j));
      ++out;
    }
  }
}

}  // namespace
}  // namespace rbc
