// Randomized differential testing: many rounds of (random shape, random
// parameters, random metric) — the exact index must match the naive
// reference every single time. Complements the hand-picked property sweeps
// with configurations nobody thought to write down.
#include <gtest/gtest.h>

#include "distance/metrics.hpp"
#include "rbc/rbc.hpp"
#include "test_util.hpp"

namespace rbc {
namespace {

TEST(RbcFuzz, ExactMatchesNaiveOverRandomConfigurations) {
  Rng rng(0xF022);
  for (int round = 0; round < 60; ++round) {
    const index_t n = 20 + rng.uniform_index(800);
    const index_t d = 1 + rng.uniform_index(40);
    const index_t k = 1 + rng.uniform_index(12);
    const index_t nq = 1 + rng.uniform_index(20);

    Matrix<float> X =
        rng.bernoulli(0.5)
            ? testutil::clustered_matrix(n, d, 1 + rng.uniform_index(8),
                                         rng())
            : testutil::random_matrix(n, d, rng());
    if (rng.bernoulli(0.3))
      X = testutil::with_duplicates(X, 1 + rng.uniform_index(n / 2 + 1));
    const Matrix<float> Q = testutil::random_matrix(nq, d, rng(), -7.0f, 7.0f);

    RbcParams params;
    params.num_reps = 1 + rng.uniform_index(X.rows());
    params.seed = rng();
    params.sampling =
        rng.bernoulli(0.5) ? Sampling::kExactCount : Sampling::kBernoulli;
    params.use_overlap_rule = rng.bernoulli(0.8);
    params.use_lemma_rule = rng.bernoulli(0.8);
    params.use_early_exit = rng.bernoulli(0.8);
    params.use_annulus_bound = rng.bernoulli(0.3);

    RbcExactIndex<> index;
    index.build(X, params);
    const KnnResult expected = testutil::naive_knn(Q, X, k);
    const KnnResult actual = index.search(Q, k);
    ASSERT_TRUE(testutil::knn_equal(expected, actual))
        << "round " << round << ": n=" << X.rows() << " d=" << d
        << " k=" << k << " nr=" << params.num_reps << " overlap="
        << params.use_overlap_rule << " lemma=" << params.use_lemma_rule
        << " early=" << params.use_early_exit
        << " annulus=" << params.use_annulus_bound;
  }
}

TEST(RbcFuzz, RangeSearchMatchesNaiveOverRandomConfigurations) {
  Rng rng(0xF023);
  for (int round = 0; round < 40; ++round) {
    const index_t n = 20 + rng.uniform_index(500);
    const index_t d = 1 + rng.uniform_index(20);
    const Matrix<float> X = testutil::clustered_matrix(
        n, d, 1 + rng.uniform_index(6), rng());
    const Matrix<float> Q =
        testutil::random_matrix(4, d, rng(), -7.0f, 7.0f);
    const float radius = rng.uniform_float(0.0f, 6.0f);

    RbcExactIndex<> index;
    index.build(X, {.num_reps = 1 + rng.uniform_index(n), .seed = rng()});
    for (index_t qi = 0; qi < Q.rows(); ++qi)
      ASSERT_EQ(testutil::naive_range(Q.row(qi), X, radius),
                index.range_search(Q.row(qi), radius))
          << "round " << round << " radius " << radius;
  }
}

TEST(RbcFuzz, LpMetricExactSearch) {
  // Runtime-p Minkowski metrics through the whole stack.
  Rng rng(0xF024);
  for (const float p : {1.0f, 1.5f, 2.0f, 3.0f, 7.0f}) {
    const Lp metric{p};
    const Matrix<float> X = testutil::clustered_matrix(300, 8, 4, 17);
    const Matrix<float> Q = testutil::random_matrix(15, 8, 18, -6.0f, 6.0f);
    RbcExactIndex<Lp> index;
    index.build(X, {.num_reps = 16, .seed = 19}, metric);
    EXPECT_TRUE(testutil::knn_equal(testutil::naive_knn(Q, X, 3, metric),
                                    index.search(Q, 3)))
        << "p=" << p;
  }
}

TEST(RbcFuzz, LpMetricAxioms) {
  Rng rng(0xF025);
  for (const float p : {1.0f, 1.7f, 2.5f, 4.0f}) {
    const Lp metric{p};
    const Matrix<float> pts = testutil::random_matrix(45, 12, 21);
    for (index_t i = 0; i + 2 < pts.rows(); i += 3) {
      const float ab = metric(pts.row(i), pts.row(i + 1), 12);
      const float ba = metric(pts.row(i + 1), pts.row(i), 12);
      const float bc = metric(pts.row(i + 1), pts.row(i + 2), 12);
      const float ac = metric(pts.row(i), pts.row(i + 2), 12);
      EXPECT_NEAR(ab, ba, 1e-4f * ab);
      EXPECT_LE(ac, ab + bc + 1e-3f * (ab + bc));  // Minkowski inequality
      EXPECT_NEAR(metric(pts.row(i), pts.row(i), 12), 0.0f, 1e-5f);
    }
  }
}

TEST(RbcFuzz, LpReducesToNamedMetrics) {
  const Matrix<float> pts = testutil::random_matrix(20, 16, 22);
  for (index_t i = 0; i + 1 < pts.rows(); i += 2) {
    const float* a = pts.row(i);
    const float* b = pts.row(i + 1);
    EXPECT_NEAR(Lp{1.0f}(a, b, 16), L1{}(a, b, 16),
                1e-3f * L1{}(a, b, 16));
    EXPECT_NEAR(Lp{2.0f}(a, b, 16), Euclidean{}(a, b, 16),
                1e-3f * Euclidean{}(a, b, 16));
  }
}

}  // namespace
}  // namespace rbc
