// One-shot RBC: build correctness (lists are the true s-NN of each
// representative), the Theorem 2 success-probability guarantee (measured
// empirically), candidate-set semantics of the search, and the multi-probe
// extension.
#include <gtest/gtest.h>

#include <algorithm>

#include "data/rank_error.hpp"
#include "rbc/rbc.hpp"
#include "test_util.hpp"

namespace rbc {
namespace {

TEST(RbcOneShotBuild, ListsAreExactSNearestNeighborsOfEachRep) {
  const Matrix<float> X = testutil::clustered_matrix(400, 8, 5, 1);
  RbcParams params;
  params.num_reps = 12;
  params.points_per_rep = 25;
  params.seed = 42;
  RbcOneShotIndex<> index;
  index.build(X, params);

  ASSERT_EQ(index.points_per_rep(), 25u);
  for (index_t r = 0; r < index.num_reps(); ++r) {
    // Reference: s-NN of the representative point among X.
    Matrix<float> rep_q(1, 8);
    rep_q.copy_row_from(X, index.rep_ids()[r], 0);
    const KnnResult expected = testutil::naive_knn(rep_q, X, 25);
    const auto ids = index.list_ids(r);
    const auto dists = index.list_dists(r);
    for (index_t j = 0; j < 25; ++j) {
      EXPECT_EQ(ids[j], expected.ids.at(0, j)) << "rep " << r << " slot " << j;
      EXPECT_EQ(dists[j], expected.dists.at(0, j));
    }
  }
}

TEST(RbcOneShotBuild, RepOwnsItselfFirst) {
  const Matrix<float> X = testutil::random_matrix(300, 6, 2);
  RbcOneShotIndex<> index;
  index.build(X, {.num_reps = 10, .seed = 3});
  for (index_t r = 0; r < index.num_reps(); ++r) {
    EXPECT_EQ(index.list_ids(r)[0], index.rep_ids()[r]);
    EXPECT_EQ(index.list_dists(r)[0], 0.0f);
  }
}

TEST(RbcOneShotBuild, PsiIsDistanceToSthNeighbor) {
  const Matrix<float> X = testutil::clustered_matrix(500, 10, 6, 4);
  RbcOneShotIndex<> index;
  index.build(X, {.num_reps = 15, .points_per_rep = 30, .seed = 5});
  for (index_t r = 0; r < index.num_reps(); ++r) {
    const auto dists = index.list_dists(r);
    EXPECT_EQ(index.psi(r), dists[dists.size() - 1]);
    EXPECT_TRUE(std::is_sorted(dists.begin(), dists.end()));
  }
}

TEST(RbcOneShotBuild, AutoParamsSetSEqualToNr) {
  const Matrix<float> X = testutil::random_matrix(900, 5, 6);
  RbcOneShotIndex<> index;
  index.build(X);  // nr = s = ceil(sqrt(900)) = 30
  EXPECT_EQ(index.num_reps(), 30u);
  EXPECT_EQ(index.points_per_rep(), 30u);
}

// ------------------------------------------------------ search semantics ---

TEST(RbcOneShotSearch, AnswerIsBruteForceOverChosenList) {
  // The one-shot answer must equal BF(q, X[L_r]) where r is the nearest
  // representative — the exact contract of §5.1.
  const Matrix<float> X = testutil::clustered_matrix(600, 9, 6, 7);
  const Matrix<float> Q = testutil::random_matrix(50, 9, 8, -6.0f, 6.0f);
  RbcOneShotIndex<> index;
  index.build(X, {.num_reps = 20, .points_per_rep = 40, .seed = 9});

  const KnnResult actual = index.search(Q, 3);
  const Euclidean m{};
  for (index_t qi = 0; qi < Q.rows(); ++qi) {
    // Find nearest rep by scan (ties to smaller rep index).
    index_t best_rep = 0;
    dist_t best = kInfDist;
    for (index_t r = 0; r < index.num_reps(); ++r) {
      const dist_t d = m(Q.row(qi), X.row(index.rep_ids()[r]), 9);
      if (d < best) {
        best = d;
        best_rep = r;
      }
    }
    // Reference: brute force over that list's ids.
    const auto ids = index.list_ids(best_rep);
    std::vector<std::pair<dist_t, index_t>> cand;
    for (const index_t id : ids)
      cand.emplace_back(m(Q.row(qi), X.row(id), 9), id);
    std::sort(cand.begin(), cand.end());
    for (index_t j = 0; j < 3; ++j) {
      EXPECT_EQ(actual.ids.at(qi, j), cand[j].second) << "q" << qi;
      EXPECT_EQ(actual.dists.at(qi, j), cand[j].first);
    }
  }
}

TEST(RbcOneShotSearch, Theorem2ParametersAchieveTargetSuccessRate) {
  // Theorem 2: nr = s = c sqrt(n ln(1/delta)) gives success prob >= 1-delta.
  // The theory assumes X u Q has expansion rate c, so queries must come from
  // the data distribution (held-out rows), not from an unrelated uniform box.
  const index_t n = 3'000;
  const auto [X, Q] =
      testutil::split_rows(testutil::clustered_matrix(n + 300, 8, 6, 10), n);

  const index_t param = oneshot_theory_params(n, /*c=*/2.0, /*delta=*/0.1);
  RbcOneShotIndex<> index;
  index.build(X, {.num_reps = param, .points_per_rep = param, .seed = 12});

  const KnnResult result = index.search(Q, 1);
  const double recall = data::recall_at_1(Q, X, result);
  EXPECT_GE(recall, 0.9) << "Theorem 2 target missed: recall " << recall;
}

TEST(RbcOneShotSearch, RecallImprovesWithListSize) {
  const index_t n = 2'000;
  const auto [X, Q] =
      testutil::split_rows(testutil::clustered_matrix(n + 150, 10, 8, 13), n);

  double previous = -1.0;
  for (const index_t param : {index_t{8}, index_t{45}, index_t{220}}) {
    RbcOneShotIndex<> index;
    index.build(X, {.num_reps = param, .points_per_rep = param, .seed = 15});
    const double recall = data::recall_at_1(Q, X, index.search(Q, 1));
    EXPECT_GE(recall, previous - 0.05)  // allow small non-monotonic noise
        << "recall regressed hard at param " << param;
    previous = recall;
  }
  EXPECT_GE(previous, 0.95);  // biggest setting should be near-exact
}

TEST(RbcOneShotSearch, MultiProbeImprovesRecall) {
  const index_t n = 2'000;
  const Matrix<float> X = testutil::clustered_matrix(n, 10, 8, 16);
  const Matrix<float> Q = testutil::random_matrix(200, 10, 17, -6.0f, 6.0f);

  RbcParams params;
  params.num_reps = 45;
  params.points_per_rep = 45;
  params.seed = 18;

  double recalls[3];
  int i = 0;
  for (const index_t probes : {index_t{1}, index_t{2}, index_t{4}}) {
    params.num_probes = probes;
    RbcOneShotIndex<> index;
    index.build(X, params);
    recalls[i++] = data::recall_at_1(Q, X, index.search(Q, 1));
  }
  EXPECT_GE(recalls[1], recalls[0] - 1e-9);
  EXPECT_GE(recalls[2], recalls[1] - 1e-9);
}

TEST(RbcOneShotSearch, MultiProbeDeduplicatesOverlap) {
  // With heavily overlapping lists (s close to n), multi-probe must not
  // return the same id twice.
  const Matrix<float> X = testutil::clustered_matrix(200, 6, 3, 19);
  RbcParams params;
  params.num_reps = 8;
  params.points_per_rep = 150;
  params.num_probes = 4;
  params.seed = 20;
  RbcOneShotIndex<> index;
  index.build(X, params);

  const Matrix<float> Q = testutil::random_matrix(20, 6, 21);
  const KnnResult r = index.search(Q, 10);
  for (index_t qi = 0; qi < Q.rows(); ++qi) {
    std::vector<index_t> ids;
    for (index_t j = 0; j < 10; ++j)
      if (r.ids.at(qi, j) != kInvalidIndex) ids.push_back(r.ids.at(qi, j));
    std::vector<index_t> unique_ids(ids);
    std::sort(unique_ids.begin(), unique_ids.end());
    unique_ids.erase(std::unique(unique_ids.begin(), unique_ids.end()),
                     unique_ids.end());
    EXPECT_EQ(ids.size(), unique_ids.size()) << "duplicate ids for q" << qi;
  }
}

TEST(RbcOneShotSearch, KBeyondListSizePads) {
  const Matrix<float> X = testutil::random_matrix(100, 5, 22);
  RbcOneShotIndex<> index;
  index.build(X, {.num_reps = 5, .points_per_rep = 4, .seed = 23});
  const Matrix<float> Q = testutil::random_matrix(3, 5, 24);
  const KnnResult r = index.search(Q, 8);  // k=8 > s=4 candidates
  for (index_t qi = 0; qi < Q.rows(); ++qi) {
    for (index_t j = 0; j < 4; ++j) EXPECT_NE(r.ids.at(qi, j), kInvalidIndex);
    for (index_t j = 4; j < 8; ++j) EXPECT_EQ(r.ids.at(qi, j), kInvalidIndex);
  }
}

TEST(RbcOneShotSearch, StatsCountRepAndListWork) {
  const Matrix<float> X = testutil::random_matrix(500, 7, 25);
  RbcOneShotIndex<> index;
  index.build(X, {.num_reps = 20, .points_per_rep = 30, .seed = 26});
  const Matrix<float> Q = testutil::random_matrix(10, 7, 27);
  SearchStats stats;
  index.search(Q, 1, &stats);
  EXPECT_EQ(stats.queries, 10u);
  EXPECT_EQ(stats.rep_dist_evals, 10u * 20u);
  EXPECT_EQ(stats.list_dist_evals, 10u * 30u);
}

TEST(RbcOneShotSearch, WorkIsIndependentOfDatabaseSize) {
  // The one-shot search cost is O(nr + s) regardless of n — the source of
  // its massive speedup (paper §5.1).
  SearchStats small_stats, large_stats;
  for (auto [n, stats] : {std::pair{index_t{1'000}, &small_stats},
                          std::pair{index_t{8'000}, &large_stats}}) {
    const Matrix<float> X = testutil::clustered_matrix(n, 8, 6, 28);
    RbcOneShotIndex<> index;
    index.build(X, {.num_reps = 40, .points_per_rep = 40, .seed = 29});
    const Matrix<float> Q = testutil::random_matrix(20, 8, 30);
    index.search(Q, 1, stats);
  }
  EXPECT_EQ(small_stats.dist_evals(), large_stats.dist_evals());
}

TEST(RbcOneShotEdge, SinglePointDatabase) {
  Matrix<float> X(1, 4);
  RbcOneShotIndex<> index;
  index.build(X, {.seed = 31});
  Matrix<float> Q(2, 4);
  Q.at(0, 0) = 5.0f;
  const KnnResult r = index.search(Q, 1);
  EXPECT_EQ(r.ids.at(0, 0), 0u);
  EXPECT_EQ(r.ids.at(1, 0), 0u);
}

}  // namespace
}  // namespace rbc
