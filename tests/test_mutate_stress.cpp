// Concurrency stress for the streaming-mutability subsystem: reader threads
// search continuously while writer threads insert and remove rows and the
// adapter's background merge thread rebuilds and swaps snapshots under
// them. Runs under ASan/UBSan and TSan in CI (.github/workflows/ci.yml).
//
// The torn-result oracle is a watermark protocol over deterministic row
// content. Every id's row is a pure function of the id (row_of), so a
// reader can verify, for each returned (id, dist), that the distance is
// bit-identical to recomputing it against row_of(id) — a torn snapshot
// (delta swapped mid-merge, tombstones half-applied, a row read while
// rewritten) would pair an id with bytes that are not its row. Liveness is
// checked against watermarks: the writer publishes an id to `inserted_floor`
// BEFORE inserting and to `removed_floor` only AFTER the remove returns, so
// any id a concurrent search may legally answer lies in the window the
// reader captures around its search. Queries must never block on the
// background merge: the test asserts forward progress (every reader
// completes thousands of searches while merges run) via the 300 s ctest
// timeout on a deadlock.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "api/api.hpp"
#include "common/env.hpp"
#include "distance/metrics.hpp"
#include "test_util.hpp"

namespace rbc {
namespace {

constexpr index_t kDim = 8;

// Deterministic row content: id -> row, so readers can re-derive the bytes
// behind any returned id without sharing state with the writers.
void fill_row_of(index_t id, float* out) {
  std::uint32_t state = id * 2654435761u + 12345u;
  for (index_t j = 0; j < kDim; ++j) {
    state ^= state << 13;
    state ^= state >> 17;
    state ^= state << 5;
    out[j] = static_cast<float>(state % 1000u) / 250.0f;
  }
}

Matrix<float> rows_for(const std::vector<index_t>& ids) {
  Matrix<float> rows(static_cast<index_t>(ids.size()), kDim);
  for (index_t i = 0; i < rows.rows(); ++i) fill_row_of(ids[i], rows.row(i));
  return rows;
}

void run_stress(const std::string& backend) {
  SCOPED_TRACE(backend);
  constexpr index_t kBase = 256;      // ids [0, kBase) never removed
  constexpr index_t kChurnLo = 1000;  // writer churns ids [kChurnLo, ...)
  // Instrumented builds (TSan ~10-20x) scale the writer down via the env
  // knob; the interleaving coverage comes from the race windows, not the
  // batch count.
  const int kWriterBatches =
      static_cast<int>(env_or("RBC_MUTATE_STRESS_BATCHES", std::int64_t{200}));
  constexpr index_t kBatch = 8;

  IndexOptions options;
  options.rbc.seed = 7;
  options.num_shards = 3;  // for the sharded variant: churn across shards
  options.max_delta = 16;  // small threshold: many background merges
  options.background_merge = true;

  auto index = make_index(backend, options);
  {
    std::vector<index_t> base_ids(kBase);
    for (index_t i = 0; i < kBase; ++i) base_ids[i] = i;
    index->build(rows_for(base_ids));
  }

  // Watermarks: churn ids in [kChurnLo, inserted_floor) have had insert()
  // called; those in [kChurnLo, removed_floor) have had remove() return.
  // A concurrent search may answer churn id x iff x < inserted_floor
  // (captured after the search) and x >= removed_floor (captured before):
  // anything else was either never inserted or provably dead beforehand.
  std::atomic<index_t> inserted_floor{kChurnLo};
  std::atomic<index_t> removed_floor{kChurnLo};
  std::atomic<bool> writers_done{false};
  std::atomic<int> torn_results{0};

  std::thread writer([&] {
    index_t ins = kChurnLo;  // next id to insert
    index_t rem = kChurnLo;  // next id to remove (the oldest live churn id)
    for (int b = 0; b < kWriterBatches; ++b) {
      std::vector<index_t> batch(kBatch);
      for (index_t i = 0; i < kBatch; ++i) batch[i] = ins + i;
      inserted_floor.store(ins + kBatch, std::memory_order_seq_cst);
      index->insert(rows_for(batch), batch);
      ins += kBatch;
      // Remove the oldest live churn ids, so the removed set stays a
      // contiguous prefix [kChurnLo, rem) — the invariant the readers'
      // liveness window relies on. Half the insert rate: the live set
      // keeps growing through delta rows, tombstones, and merges.
      std::vector<index_t> drop(kBatch / 2);
      for (index_t i = 0; i < kBatch / 2; ++i) drop[i] = rem + i;
      const index_t removed = index->remove(drop);
      EXPECT_EQ(removed, kBatch / 2);
      rem += kBatch / 2;
      removed_floor.store(rem, std::memory_order_seq_cst);
    }
    writers_done.store(true, std::memory_order_seq_cst);
  });

  constexpr int kReaders = 3;
  std::vector<std::thread> readers;
  std::vector<int> searches(kReaders, 0);
  readers.reserve(kReaders);
  for (int t = 0; t < kReaders; ++t) {
    readers.emplace_back([&, t] {
      const Matrix<float> Q = testutil::random_matrix(4, kDim, 400 + t);
      const index_t k = 6;
      std::vector<float> row(kDim);
      while (!writers_done.load(std::memory_order_seq_cst) ||
             searches[t] < 50) {
        const index_t removed_before =
            removed_floor.load(std::memory_order_seq_cst);
        const KnnResult r = index->knn_search({.queries = &Q, .k = k}).knn;
        const index_t inserted_after =
            inserted_floor.load(std::memory_order_seq_cst);
        for (index_t qi = 0; qi < Q.rows(); ++qi) {
          for (index_t j = 0; j < k; ++j) {
            const index_t id = r.ids.at(qi, j);
            const dist_t d = r.dists.at(qi, j);
            // Liveness window.
            const bool base_id = id < kBase;
            const bool churn_id = id >= kChurnLo && id < inserted_after &&
                                  id >= removed_before;
            if (!base_id && !churn_id) {
              ++torn_results;
              continue;
            }
            // Content integrity: the distance must be bit-identical to the
            // recomputation against the id's deterministic row.
            fill_row_of(id, row.data());
            const dist_t expected = Euclidean{}(Q.row(qi), row.data(), kDim);
            if (d != expected) ++torn_results;
            // Order integrity.
            if (j > 0 && d < r.dists.at(qi, j - 1)) ++torn_results;
          }
        }
        ++searches[t];
      }
    });
  }

  writer.join();
  for (std::thread& reader : readers) reader.join();
  EXPECT_EQ(torn_results.load(), 0)
      << backend << " returned torn results under concurrent mutation";
  for (int t = 0; t < kReaders; ++t)
    EXPECT_GE(searches[t], 50)
        << backend << " reader " << t << " was starved";

  // After the dust settles the index must be consistent: compact joins the
  // last merge and the live set matches the watermark bookkeeping.
  index->compact();
  const IndexInfo info = index->info();
  EXPECT_EQ(info.delta_rows, 0u);
  EXPECT_EQ(info.tombstones, 0u);
  const index_t churned = inserted_floor.load() - kChurnLo;
  const index_t removed = removed_floor.load() - kChurnLo;
  EXPECT_EQ(info.size, kBase + churned - removed);
}

TEST(MutateStress, BruteForceReadersNeverSeeTornResults) {
  run_stress("bruteforce");
}

TEST(MutateStress, RbcExactReadersNeverSeeTornResults) {
  run_stress("rbc-exact");
}

TEST(MutateStress, ShardedBruteForceReadersNeverSeeTornResults) {
  run_stress("sharded:bruteforce");
}

}  // namespace
}  // namespace rbc
