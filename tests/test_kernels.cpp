// SIMD kernels vs scalar references, across dimensionalities that exercise
// every tail-handling path (d % 16, d % 8, scalar tail).
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "common/rng.hpp"
#include "distance/kernels.hpp"

namespace rbc {
namespace {

class KernelDimTest : public ::testing::TestWithParam<index_t> {};

std::vector<float> random_vec(index_t d, std::uint64_t seed) {
  std::vector<float> v(d);
  Rng rng(seed);
  for (auto& x : v) x = rng.uniform_float(-3.0f, 3.0f);
  return v;
}

TEST_P(KernelDimTest, SqL2MatchesScalar) {
  const index_t d = GetParam();
  for (std::uint64_t trial = 0; trial < 20; ++trial) {
    const auto a = random_vec(d, 2 * trial);
    const auto b = random_vec(d, 2 * trial + 1);
    const float simd = kernels::sq_l2(a.data(), b.data(), d);
    const float scalar = kernels::sq_l2_scalar(a.data(), b.data(), d);
    // FMA + different association order: allow tight relative tolerance.
    EXPECT_NEAR(simd, scalar, 1e-4f * std::max(1.0f, scalar));
  }
}

TEST_P(KernelDimTest, L1MatchesScalar) {
  const index_t d = GetParam();
  for (std::uint64_t trial = 0; trial < 20; ++trial) {
    const auto a = random_vec(d, 100 + 2 * trial);
    const auto b = random_vec(d, 101 + 2 * trial);
    const float simd = kernels::l1(a.data(), b.data(), d);
    const float scalar = kernels::l1_scalar(a.data(), b.data(), d);
    EXPECT_NEAR(simd, scalar, 1e-4f * std::max(1.0f, scalar));
  }
}

TEST_P(KernelDimTest, LInfMatchesScalarExactly) {
  const index_t d = GetParam();
  for (std::uint64_t trial = 0; trial < 20; ++trial) {
    const auto a = random_vec(d, 200 + 2 * trial);
    const auto b = random_vec(d, 201 + 2 * trial);
    // max is order-independent: results must be bit-identical.
    EXPECT_EQ(kernels::linf(a.data(), b.data(), d),
              kernels::linf_scalar(a.data(), b.data(), d));
  }
}

TEST_P(KernelDimTest, DotMatchesScalar) {
  const index_t d = GetParam();
  for (std::uint64_t trial = 0; trial < 20; ++trial) {
    const auto a = random_vec(d, 300 + 2 * trial);
    const auto b = random_vec(d, 301 + 2 * trial);
    const float simd = kernels::dot(a.data(), b.data(), d);
    const float scalar = kernels::dot_scalar(a.data(), b.data(), d);
    EXPECT_NEAR(simd, scalar, 1e-3f * std::max(1.0f, std::fabs(scalar)));
  }
}

// Dimensions chosen to hit: tiny scalar-only, 8-lane exact, 16-lane exact,
// 8+tail, 16+8, 16+8+tail, the paper's dataset dims (21, 54, 74, 78), and a
// large one.
INSTANTIATE_TEST_SUITE_P(Dims, KernelDimTest,
                         ::testing::Values(1, 2, 3, 4, 7, 8, 9, 15, 16, 17,
                                           21, 23, 24, 31, 32, 54, 74, 78,
                                           128, 333));

TEST(Kernels, ZeroDimension) {
  const float x = 1.0f;
  EXPECT_EQ(kernels::sq_l2(&x, &x, 0), 0.0f);
  EXPECT_EQ(kernels::l1(&x, &x, 0), 0.0f);
  EXPECT_EQ(kernels::linf(&x, &x, 0), 0.0f);
  EXPECT_EQ(kernels::dot(&x, &x, 0), 0.0f);
}

TEST(Kernels, IdenticalVectorsGiveZeroDistance) {
  const auto v = random_vec(77, 42);
  EXPECT_EQ(kernels::sq_l2(v.data(), v.data(), 77), 0.0f);
  EXPECT_EQ(kernels::l1(v.data(), v.data(), 77), 0.0f);
  EXPECT_EQ(kernels::linf(v.data(), v.data(), 77), 0.0f);
}

TEST(Kernels, KnownValues) {
  const float a[4] = {0.0f, 0.0f, 0.0f, 0.0f};
  const float b[4] = {3.0f, 4.0f, 0.0f, 0.0f};
  EXPECT_FLOAT_EQ(kernels::sq_l2(a, b, 4), 25.0f);
  EXPECT_FLOAT_EQ(kernels::l1(a, b, 4), 7.0f);
  EXPECT_FLOAT_EQ(kernels::linf(a, b, 4), 4.0f);
  EXPECT_FLOAT_EQ(kernels::dot(b, b, 4), 25.0f);
}

}  // namespace
}  // namespace rbc
