// SIMD kernels vs scalar references, across dimensionalities that exercise
// every tail-handling path (d % 16, d % 8, scalar tail) — both the
// compile-time kernels (distance/kernels.hpp) and every shape x ISA of the
// runtime-dispatched kernel layer (distance/dispatch.hpp).
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <string>
#include <vector>

#include "common/matrix.hpp"
#include "common/rng.hpp"
#include "distance/dispatch.hpp"
#include "distance/kernels.hpp"
#include "distance/quantized.hpp"

namespace rbc {
namespace {

class KernelDimTest : public ::testing::TestWithParam<index_t> {};

std::vector<float> random_vec(index_t d, std::uint64_t seed) {
  std::vector<float> v(d);
  Rng rng(seed);
  for (auto& x : v) x = rng.uniform_float(-3.0f, 3.0f);
  return v;
}

TEST_P(KernelDimTest, SqL2MatchesScalar) {
  const index_t d = GetParam();
  for (std::uint64_t trial = 0; trial < 20; ++trial) {
    const auto a = random_vec(d, 2 * trial);
    const auto b = random_vec(d, 2 * trial + 1);
    const float simd = kernels::sq_l2(a.data(), b.data(), d);
    const float scalar = kernels::sq_l2_scalar(a.data(), b.data(), d);
    // FMA + different association order: allow tight relative tolerance.
    EXPECT_NEAR(simd, scalar, 1e-4f * std::max(1.0f, scalar));
  }
}

TEST_P(KernelDimTest, L1MatchesScalar) {
  const index_t d = GetParam();
  for (std::uint64_t trial = 0; trial < 20; ++trial) {
    const auto a = random_vec(d, 100 + 2 * trial);
    const auto b = random_vec(d, 101 + 2 * trial);
    const float simd = kernels::l1(a.data(), b.data(), d);
    const float scalar = kernels::l1_scalar(a.data(), b.data(), d);
    EXPECT_NEAR(simd, scalar, 1e-4f * std::max(1.0f, scalar));
  }
}

TEST_P(KernelDimTest, LInfMatchesScalarExactly) {
  const index_t d = GetParam();
  for (std::uint64_t trial = 0; trial < 20; ++trial) {
    const auto a = random_vec(d, 200 + 2 * trial);
    const auto b = random_vec(d, 201 + 2 * trial);
    // max is order-independent: results must be bit-identical.
    EXPECT_EQ(kernels::linf(a.data(), b.data(), d),
              kernels::linf_scalar(a.data(), b.data(), d));
  }
}

TEST_P(KernelDimTest, DotMatchesScalar) {
  const index_t d = GetParam();
  for (std::uint64_t trial = 0; trial < 20; ++trial) {
    const auto a = random_vec(d, 300 + 2 * trial);
    const auto b = random_vec(d, 301 + 2 * trial);
    const float simd = kernels::dot(a.data(), b.data(), d);
    const float scalar = kernels::dot_scalar(a.data(), b.data(), d);
    EXPECT_NEAR(simd, scalar, 1e-3f * std::max(1.0f, std::fabs(scalar)));
  }
}

// Dimensions chosen to hit: tiny scalar-only, 8-lane exact, 16-lane exact,
// 8+tail, 16+8, 16+8+tail, the paper's dataset dims (21, 54, 74, 78), and a
// large one.
INSTANTIATE_TEST_SUITE_P(Dims, KernelDimTest,
                         ::testing::Values(1, 2, 3, 4, 7, 8, 9, 15, 16, 17,
                                           21, 23, 24, 31, 32, 54, 74, 78,
                                           128, 333));

TEST(Kernels, ZeroDimension) {
  const float x = 1.0f;
  EXPECT_EQ(kernels::sq_l2(&x, &x, 0), 0.0f);
  EXPECT_EQ(kernels::l1(&x, &x, 0), 0.0f);
  EXPECT_EQ(kernels::linf(&x, &x, 0), 0.0f);
  EXPECT_EQ(kernels::dot(&x, &x, 0), 0.0f);
}

TEST(Kernels, IdenticalVectorsGiveZeroDistance) {
  const auto v = random_vec(77, 42);
  EXPECT_EQ(kernels::sq_l2(v.data(), v.data(), 77), 0.0f);
  EXPECT_EQ(kernels::l1(v.data(), v.data(), 77), 0.0f);
  EXPECT_EQ(kernels::linf(v.data(), v.data(), 77), 0.0f);
}

TEST(Kernels, KnownValues) {
  const float a[4] = {0.0f, 0.0f, 0.0f, 0.0f};
  const float b[4] = {3.0f, 4.0f, 0.0f, 0.0f};
  EXPECT_FLOAT_EQ(kernels::sq_l2(a, b, 4), 25.0f);
  EXPECT_FLOAT_EQ(kernels::l1(a, b, 4), 7.0f);
  EXPECT_FLOAT_EQ(kernels::linf(a, b, 4), 4.0f);
  EXPECT_FLOAT_EQ(kernels::dot(b, b, 4), 25.0f);
}

// ---------------------------------------- dispatched kernel layer fuzz ---
//
// Every compiled-and-runnable ISA table x every kernel shape must agree
// with the scalar reference within the documented margins
// (dispatch::tile_margin / gemm_margin_scale — the slack the re-measure
// prefilters inflate their bounds by). Row counts deliberately not
// multiples of the 8-row block, dims cover every tail path.

class DispatchFuzzTest : public ::testing::TestWithParam<index_t> {};

Matrix<float> random_points(index_t rows, index_t d, std::uint64_t seed) {
  Matrix<float> m(rows, d);
  Rng rng(seed);
  for (index_t i = 0; i < rows; ++i)
    for (index_t j = 0; j < d; ++j)
      m.at(i, j) = rng.uniform_float(-3.0f, 3.0f);
  return m;
}

std::vector<dispatch::Isa> runnable_isas() {
  std::vector<dispatch::Isa> isas;
  for (const dispatch::Isa isa :
       {dispatch::Isa::kScalar, dispatch::Isa::kAvx2,
        dispatch::Isa::kAvx512})
    if (dispatch::isa_available(isa)) isas.push_back(isa);
  return isas;
}

TEST_P(DispatchFuzzTest, TileShapesMatchScalarReference) {
  const index_t d = GetParam();
  const index_t rows = 53;  // not a multiple of anything interesting
  const Matrix<float> X = random_points(rows, d, 1'000 + d);
  const Matrix<float> Q = random_points(dispatch::kTile, d, 2'000 + d);

  const float* qrows[dispatch::kTile];
  for (index_t t = 0; t < dispatch::kTile; ++t) qrows[t] = Q.row(t);
  std::vector<float> qt(static_cast<std::size_t>(d) * dispatch::kTile);
  dispatch::pack_tile(qrows, dispatch::kTile, d, qt.data());
  float q_sq[dispatch::kTile];
  std::vector<float> x_sq(rows);
  for (index_t t = 0; t < dispatch::kTile; ++t)
    q_sq[t] = kernels::dot_scalar(Q.row(t), Q.row(t), d);
  for (index_t p = 0; p < rows; ++p)
    x_sq[p] = kernels::dot_scalar(X.row(p), X.row(p), d);

  const float mrel = dispatch::tile_margin(d);
  const float mabs = dispatch::gemm_margin_scale(d);
  for (const dispatch::Isa isa : runnable_isas()) {
    const dispatch::KernelOps& ops = *dispatch::ops_for(isa);
    std::vector<float> tile_out(static_cast<std::size_t>(rows) *
                                dispatch::kTile);
    std::vector<float> gemm_out(tile_out.size());
    float tile_min[dispatch::kTile], gemm_min[dispatch::kTile];
    ops.tile(qt.data(), d, X.data(), X.stride(), 0, rows, tile_out.data(),
             tile_min);
    ops.tile_gemm(qt.data(), q_sq, d, X.data(), X.stride(), x_sq.data(), 0,
                  rows, gemm_out.data(), gemm_min);
    for (index_t p = 0; p < rows; ++p)
      for (index_t t = 0; t < dispatch::kTile; ++t) {
        const float ref = kernels::sq_l2_scalar(Q.row(t), X.row(p), d);
        const std::size_t at =
            static_cast<std::size_t>(p) * dispatch::kTile + t;
        EXPECT_NEAR(tile_out[at], ref, 1e-6f + mrel * ref)
            << "tile " << dispatch::isa_name(isa) << " d=" << d;
        EXPECT_NEAR(gemm_out[at], ref,
                    1e-6f + mrel * ref + mabs * (q_sq[t] + x_sq[p]))
            << "tile_gemm " << dispatch::isa_name(isa) << " d=" << d;
        // The reported lane minimum must never exceed any written value
        // (it gates whole-lane skips — an overshoot would drop candidates).
        EXPECT_LE(tile_min[t], tile_out[at]);
        EXPECT_LE(gemm_min[t], gemm_out[at]);
      }
  }
}

TEST_P(DispatchFuzzTest, RowAndGatherShapesMatchScalarReference) {
  const index_t d = GetParam();
  const index_t rows = 61;  // 7 full 8-row blocks + a 5-row remainder
  const Matrix<float> X = random_points(rows, d, 3'000 + d);
  const Matrix<float> Q = random_points(1, d, 4'000 + d);

  std::vector<index_t> ids;  // gather pattern: every other row, reversed
  for (index_t p = rows; p-- > 0;)
    if (p % 2 == 0) ids.push_back(p);

  const float mrel = dispatch::tile_margin(d);
  for (const dispatch::Isa isa : runnable_isas()) {
    const dispatch::KernelOps& ops = *dispatch::ops_for(isa);
    std::vector<float> out(rows);
    ops.rows(Q.row(0), d, X.data(), X.stride(), 0, rows, out.data());
    for (index_t p = 0; p < rows; ++p) {
      const float ref = kernels::sq_l2_scalar(Q.row(0), X.row(p), d);
      EXPECT_NEAR(out[p], ref, 1e-6f + mrel * ref)
          << "rows " << dispatch::isa_name(isa) << " d=" << d << " p=" << p;
    }
    // Offset start: exercises lo != 0 block alignment.
    if (rows > 9) {
      ops.rows(Q.row(0), d, X.data(), X.stride(), 9, rows, out.data());
      for (index_t p = 9; p < rows; ++p) {
        const float ref = kernels::sq_l2_scalar(Q.row(0), X.row(p), d);
        EXPECT_NEAR(out[p - 9], ref, 1e-6f + mrel * ref)
            << "rows(lo=9) " << dispatch::isa_name(isa) << " d=" << d;
      }
    }
    std::vector<float> gout(ids.size());
    ops.gather(Q.row(0), d, X.data(), X.stride(), ids.data(),
               static_cast<index_t>(ids.size()), gout.data());
    for (std::size_t j = 0; j < ids.size(); ++j) {
      const float ref = kernels::sq_l2_scalar(Q.row(0), X.row(ids[j]), d);
      EXPECT_NEAR(gout[j], ref, 1e-6f + mrel * ref)
          << "gather " << dispatch::isa_name(isa) << " d=" << d;
    }
  }
}

// The metric shapes of the unified API's runtime metrics: Manhattan
// (rows_l1/gather_l1, relative tolerance — sums of non-negative terms) and
// negated dot (rows_ip/gather_ip, absolute tolerance scaled by
// ||q||*||x|| — cancellation makes relative bounds meaningless).
TEST_P(DispatchFuzzTest, L1AndIpShapesMatchScalarReference) {
  const index_t d = GetParam();
  const index_t rows = 61;  // 7 full 8-row blocks + a 5-row remainder
  const Matrix<float> X = random_points(rows, d, 5'000 + d);
  const Matrix<float> Q = random_points(1, d, 6'000 + d);
  const float* q = Q.row(0);

  std::vector<index_t> ids;  // gather pattern: every other row, reversed
  for (index_t p = rows; p-- > 0;)
    if (p % 2 == 0) ids.push_back(p);

  const float mrel = dispatch::tile_margin(d);
  const float q_norm = std::sqrt(kernels::dot_scalar(q, q, d));
  for (const dispatch::Isa isa : runnable_isas()) {
    const dispatch::KernelOps& ops = *dispatch::ops_for(isa);
    std::vector<float> out(rows);

    const float l1_min =
        ops.rows_l1(q, d, X.data(), X.stride(), 0, rows, out.data());
    float written_min = kInfDist;
    for (index_t p = 0; p < rows; ++p) {
      const float ref = kernels::l1_scalar(q, X.row(p), d);
      EXPECT_NEAR(out[p], ref, 1e-6f + mrel * ref)
          << "rows_l1 " << dispatch::isa_name(isa) << " d=" << d;
      written_min = std::min(written_min, out[p]);
    }
    EXPECT_EQ(l1_min, written_min) << "rows_l1 min " << dispatch::isa_name(isa);

    const float ip_min =
        ops.rows_ip(q, d, X.data(), X.stride(), 0, rows, out.data());
    written_min = kInfDist;
    for (index_t p = 0; p < rows; ++p) {
      const float ref = -kernels::dot_scalar(q, X.row(p), d);
      const float x_norm =
          std::sqrt(kernels::dot_scalar(X.row(p), X.row(p), d));
      EXPECT_NEAR(out[p], ref, 1e-6f + mrel * q_norm * x_norm)
          << "rows_ip " << dispatch::isa_name(isa) << " d=" << d;
      written_min = std::min(written_min, out[p]);
    }
    EXPECT_EQ(ip_min, written_min) << "rows_ip min " << dispatch::isa_name(isa);

    std::vector<float> gout(ids.size());
    ops.gather_l1(q, d, X.data(), X.stride(), ids.data(),
                  static_cast<index_t>(ids.size()), gout.data());
    for (std::size_t j = 0; j < ids.size(); ++j) {
      const float ref = kernels::l1_scalar(q, X.row(ids[j]), d);
      EXPECT_NEAR(gout[j], ref, 1e-6f + mrel * ref)
          << "gather_l1 " << dispatch::isa_name(isa) << " d=" << d;
    }
    ops.gather_ip(q, d, X.data(), X.stride(), ids.data(),
                  static_cast<index_t>(ids.size()), gout.data());
    for (std::size_t j = 0; j < ids.size(); ++j) {
      const float ref = -kernels::dot_scalar(q, X.row(ids[j]), d);
      const float x_norm = std::sqrt(
          kernels::dot_scalar(X.row(ids[j]), X.row(ids[j]), d));
      EXPECT_NEAR(gout[j], ref, 1e-6f + mrel * q_norm * x_norm)
          << "gather_ip " << dispatch::isa_name(isa) << " d=" << d;
    }
    // Offset start: lo != 0 block alignment for both metric row shapes.
    if (rows > 9) {
      ops.rows_l1(q, d, X.data(), X.stride(), 9, rows, out.data());
      for (index_t p = 9; p < rows; ++p) {
        const float ref = kernels::l1_scalar(q, X.row(p), d);
        EXPECT_NEAR(out[p - 9], ref, 1e-6f + mrel * ref)
            << "rows_l1(lo=9) " << dispatch::isa_name(isa) << " d=" << d;
      }
    }
  }
}

// The compressed-tier shapes (rows_fp16/gather_fp16, rows_int8/gather_int8)
// measure against the *dequantized* point x̂, so the reference is the
// double-precision distance to x̂ — not to x. Edge rows bake in the codec's
// hard cases: a constant row (int8 scale 0), fp16 overflow (codes go ±inf),
// float denormals (flush to ±0 in half), and a huge-scale int8 row where
// the fused dequant's cancellation slack matters.
TEST_P(DispatchFuzzTest, QuantizedShapesMatchDequantizedReference) {
  const index_t d = GetParam();
  const index_t rows = 61;  // 7 full 8-row blocks + a 5-row remainder
  Matrix<float> X = random_points(rows, d, 7'000 + d);
  for (index_t j = 0; j < d; ++j) {
    X.at(0, j) = 2.5f;                                // constant row
    X.at(1, j) = (j % 2 ? 1.0f : -1.0f) * 7.0e4f;     // fp16 overflow
    X.at(2, j) = (j % 2 ? 1.0f : -1.0f) * 3.0e-40f;   // denormal floats
    X.at(3, j) = j == 0 ? 1.0e4f : 1.0e-4f;           // huge int8 scale
  }
  const Matrix<float> Q = random_points(1, d, 8'000 + d);
  const float* q = Q.row(0);
  const double q_norm = std::sqrt(
      static_cast<double>(kernels::dot_scalar(q, q, d)));

  std::vector<index_t> ids;  // gather pattern: every other row, reversed
  for (index_t p = rows; p-- > 0;)
    if (p % 2 == 0) ids.push_back(p);

  const float mrel = dispatch::tile_margin(d);
  for (const quant::Storage mode :
       {quant::Storage::kFp16, quant::Storage::kInt8}) {
    const quant::QuantizedStore store = quant::quantize(mode, X);
    // Distance to the dequantized row, accumulated in double.
    const auto ref_l2 = [&](index_t p) {
      double sq = 0.0;
      for (index_t j = 0; j < d; ++j) {
        const std::size_t at = static_cast<std::size_t>(p) * d + j;
        const double xq =
            mode == quant::Storage::kFp16
                ? static_cast<double>(quant::fp16_decode(store.fp16[at]))
                : static_cast<double>(store.int8[at]) * store.scale[p] +
                      store.offset[p];
        const double diff = static_cast<double>(q[j]) - xq;
        sq += diff * diff;
      }
      return std::sqrt(sq);
    };
    // The fused int8 dequant's rounding slack scales with the row's
    // magnitude bound (see quantized_scan_rows); fp16 decodes exactly.
    const auto tol = [&](index_t p, double ref) {
      const double amp = mode == quant::Storage::kInt8
                             ? static_cast<double>(store.amp[p])
                             : 0.0;
      return 1e-6 + mrel * ref + 2e-6 * (q_norm + amp);
    };

    for (const dispatch::Isa isa : runnable_isas()) {
      const dispatch::KernelOps& ops = *dispatch::ops_for(isa);
      const std::string what = std::string(quant::name(mode)) + " " +
                               dispatch::isa_name(isa) +
                               " d=" + std::to_string(d);
      std::vector<float> out(rows, -1.0f);
      const float ret =
          mode == quant::Storage::kFp16
              ? ops.rows_fp16(q, d, store.fp16.data(), d, 0, rows,
                              out.data())
              : ops.rows_int8(q, d, store.int8.data(), d,
                              store.scale.data(), store.offset.data(), 0,
                              rows, out.data());
      float written_min = kInfDist;
      for (index_t p = 0; p < rows; ++p) {
        const double ref = ref_l2(p);
        if (std::isinf(ref)) {
          EXPECT_EQ(out[p], kInfDist) << what << " p=" << p;
        } else {
          EXPECT_NEAR(std::sqrt(static_cast<double>(out[p])), ref,
                      tol(p, ref))
              << what << " p=" << p;
        }
        written_min = std::min(written_min, out[p]);
      }
      // The min-return contract gates chunk skips: it must equal the min
      // of the written values exactly (an overshoot would drop points).
      EXPECT_EQ(ret, written_min) << what;

      // Offset start: lo != 0 block alignment.
      if (rows > 9) {
        if (mode == quant::Storage::kFp16) {
          ops.rows_fp16(q, d, store.fp16.data(), d, 9, rows, out.data());
        } else {
          ops.rows_int8(q, d, store.int8.data(), d, store.scale.data(),
                        store.offset.data(), 9, rows, out.data());
        }
        for (index_t p = 9; p < rows; ++p) {
          const double ref = ref_l2(p);
          if (std::isinf(ref)) continue;
          EXPECT_NEAR(std::sqrt(static_cast<double>(out[p - 9])), ref,
                      tol(p, ref))
              << what << "(lo=9) p=" << p;
        }
      }

      std::vector<float> gout(ids.size(), -1.0f);
      const float gret =
          mode == quant::Storage::kFp16
              ? ops.gather_fp16(q, d, store.fp16.data(), d, ids.data(),
                                static_cast<index_t>(ids.size()),
                                gout.data())
              : ops.gather_int8(q, d, store.int8.data(), d,
                                store.scale.data(), store.offset.data(),
                                ids.data(),
                                static_cast<index_t>(ids.size()),
                                gout.data());
      written_min = kInfDist;
      for (std::size_t j = 0; j < ids.size(); ++j) {
        const double ref = ref_l2(ids[j]);
        if (std::isinf(ref)) {
          EXPECT_EQ(gout[j], kInfDist) << "gather_" << what;
        } else {
          EXPECT_NEAR(std::sqrt(static_cast<double>(gout[j])), ref,
                      tol(ids[j], ref))
              << "gather_" << what << " j=" << j;
        }
        written_min = std::min(written_min, gout[j]);
      }
      EXPECT_EQ(gret, written_min) << "gather_" << what;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Dims, DispatchFuzzTest,
                         ::testing::Values(1, 2, 7, 8, 15, 16, 17, 21, 31,
                                           32, 54, 74, 128, 333));

// The software binary16 codec underpinning the scalar table (and the err
// bounds of every store): known encodings, saturation, subnormals, and
// round-to-nearest-even at the exact midpoint.
TEST(QuantizedCodec, Fp16EncodesLikeTheIeeeReference) {
  EXPECT_EQ(quant::fp16_encode(0.0f), 0x0000u);
  EXPECT_EQ(quant::fp16_encode(-0.0f), 0x8000u);
  EXPECT_EQ(quant::fp16_encode(1.0f), 0x3C00u);
  EXPECT_EQ(quant::fp16_encode(-2.0f), 0xC000u);
  EXPECT_EQ(quant::fp16_encode(65504.0f), 0x7BFFu);  // largest finite half
  EXPECT_EQ(quant::fp16_encode(65520.0f), 0x7C00u);  // overflows to +inf
  EXPECT_EQ(quant::fp16_encode(-1.0e6f), 0xFC00u);
  EXPECT_EQ(quant::fp16_decode(0x7C00u), kInfDist);
  // Smallest subnormal half (2^-24) and below-half-ulp flush to zero.
  EXPECT_EQ(quant::fp16_encode(5.9604645e-8f), 0x0001u);
  EXPECT_EQ(quant::fp16_encode(1.0e-9f), 0x0000u);
  // Midpoint 1 + 2^-11 is equidistant between 1.0 and 1 + 2^-10: RNE picks
  // the even code (1.0); the next representable float above rounds up.
  EXPECT_EQ(quant::fp16_encode(1.00048828125f), 0x3C00u);
  EXPECT_EQ(quant::fp16_encode(std::nextafter(1.00048828125f, 2.0f)),
            0x3C01u);
  // Round-trip: every half code decodes then re-encodes to itself (skip
  // NaNs — payload bits are not preserved exactly).
  for (std::uint32_t code = 0; code <= 0xFFFFu; ++code) {
    const float value = quant::fp16_decode(static_cast<std::uint16_t>(code));
    if (std::isnan(value)) continue;
    EXPECT_EQ(quant::fp16_encode(value), code) << "code " << code;
  }
}

// The stored per-row err must be a true upper bound on ||x - x̂|| — the
// whole exactness argument rides on it — and int8 codes must stay in the
// clamped [-127, 127] range with exact constant-row encodings.
TEST(QuantizedCodec, StoreErrBoundsTheReconstructionResidual) {
  const index_t rows = 37, d = 21;
  Matrix<float> X = random_points(rows, d, 11'000);
  for (index_t j = 0; j < d; ++j) {
    X.at(0, j) = -1.25f;                         // constant row
    X.at(1, j) = j == 0 ? 7.0e4f : -7.0e4f;      // fp16-saturating range
  }
  for (const quant::Storage mode :
       {quant::Storage::kFp16, quant::Storage::kInt8}) {
    const quant::QuantizedStore store = quant::quantize(mode, X);
    EXPECT_TRUE(store.active());
    EXPECT_EQ(store.rows, rows);
    EXPECT_EQ(store.cols, d);
    float err_max = 0.0f, amp_max = 0.0f;
    for (index_t p = 0; p < rows; ++p) {
      double sq = 0.0;
      for (index_t j = 0; j < d; ++j) {
        const std::size_t at = static_cast<std::size_t>(p) * d + j;
        double xq;
        if (mode == quant::Storage::kFp16) {
          xq = quant::fp16_decode(store.fp16[at]);
        } else {
          EXPECT_GE(store.int8[at], -127);
          EXPECT_LE(store.int8[at], 127);
          xq = static_cast<double>(store.int8[at]) * store.scale[p] +
               store.offset[p];
        }
        const double diff = X.at(p, j) - xq;
        sq += diff * diff;
      }
      if (std::isinf(sq)) continue;  // saturated fp16 row: err is +inf too
      EXPECT_LE(std::sqrt(sq), store.err[p]) << quant::name(mode) << " row "
                                             << p;
      err_max = std::max(err_max, store.err[p]);
      if (mode == quant::Storage::kInt8)
        amp_max = std::max(amp_max, store.amp[p]);
    }
    EXPECT_GE(store.err_max, err_max);
    EXPECT_GE(store.amp_max, amp_max);
  }
  // Constant row encodes exactly under int8 (scale 0, dequant == offset).
  const quant::QuantizedStore store = quant::quantize(quant::Storage::kInt8, X);
  EXPECT_EQ(store.scale[0], 0.0f);
  EXPECT_EQ(store.offset[0], -1.25f);
}

TEST(Dispatch, ScalarAlwaysCompiledAndDetectionConsistent) {
  EXPECT_TRUE(dispatch::isa_compiled(dispatch::Isa::kScalar));
  EXPECT_TRUE(dispatch::isa_available(dispatch::Isa::kScalar));
  EXPECT_NE(dispatch::ops_for(dispatch::Isa::kScalar), nullptr);
  // The detected ISA must be one the dispatcher can actually run.
  EXPECT_TRUE(dispatch::isa_available(dispatch::detected_isa()));
  // fast_kernel() is exactly "active != scalar".
  EXPECT_EQ(dispatch::fast_kernel(),
            dispatch::active_isa() != dispatch::Isa::kScalar);
}

TEST(Dispatch, ForceIsaRoundTripsAndIgnoresUnavailable) {
  const dispatch::Isa detected = dispatch::detected_isa();
  EXPECT_EQ(dispatch::force_isa(dispatch::Isa::kScalar),
            dispatch::Isa::kScalar);
  EXPECT_EQ(dispatch::active_isa(), dispatch::Isa::kScalar);
  for (const dispatch::Isa isa :
       {dispatch::Isa::kAvx2, dispatch::Isa::kAvx512}) {
    const dispatch::Isa got = dispatch::force_isa(isa);
    if (dispatch::isa_available(isa))
      EXPECT_EQ(got, isa);
    else
      EXPECT_EQ(got, dispatch::Isa::kScalar);  // unavailable: unchanged
    dispatch::force_isa(dispatch::Isa::kScalar);
  }
  dispatch::clear_forced_isa();
  EXPECT_EQ(dispatch::active_isa(), detected);
}

TEST(Dispatch, ZeroDimensionAndEmptyRangesAreSafe) {
  const float x = 1.0f;
  float out[4] = {-1.0f, -1.0f, -1.0f, -1.0f};
  for (const dispatch::Isa isa : runnable_isas()) {
    const dispatch::KernelOps& ops = *dispatch::ops_for(isa);
    ops.rows(&x, 0, &x, 1, 0, 1, out);  // d == 0: distance is 0
    EXPECT_EQ(out[0], 0.0f) << dispatch::isa_name(isa);
    ops.rows(&x, 1, &x, 1, 0, 0, out);  // empty row range: no write
    ops.gather(&x, 1, &x, 1, nullptr, 0, out);
    ops.rows_l1(&x, 0, &x, 1, 0, 1, out);  // metric shapes: same contract
    EXPECT_EQ(out[0], 0.0f) << dispatch::isa_name(isa);
    ops.rows_ip(&x, 0, &x, 1, 0, 1, out);
    EXPECT_EQ(out[0], 0.0f) << dispatch::isa_name(isa);
    ops.rows_l1(&x, 1, &x, 1, 0, 0, out);
    ops.rows_ip(&x, 1, &x, 1, 0, 0, out);
    ops.gather_l1(&x, 1, &x, 1, nullptr, 0, out);
    ops.gather_ip(&x, 1, &x, 1, nullptr, 0, out);
  }
}

}  // namespace
}  // namespace rbc
