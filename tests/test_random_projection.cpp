#include <gtest/gtest.h>

#include <cmath>

#include "data/random_projection.hpp"
#include "distance/metrics.hpp"
#include "test_util.hpp"

namespace rbc::data {
namespace {

TEST(RandomProjection, OutputShape) {
  const Matrix<float> X = testutil::random_matrix(100, 64, 1);
  const Matrix<float> P = random_projection(X, 16, 2);
  EXPECT_EQ(P.rows(), 100u);
  EXPECT_EQ(P.cols(), 16u);
}

TEST(RandomProjection, DeterministicInSeed) {
  const Matrix<float> X = testutil::random_matrix(50, 32, 3);
  const Matrix<float> a = random_projection(X, 8, 7);
  const Matrix<float> b = random_projection(X, 8, 7);
  for (index_t i = 0; i < a.rows(); ++i)
    for (index_t j = 0; j < a.cols(); ++j)
      EXPECT_EQ(a.at(i, j), b.at(i, j));
}

TEST(RandomProjection, PreservesSquaredNormsInExpectation) {
  // E||Px||^2 = ||x||^2; averaging over many vectors the ratio should be
  // near 1 for a moderate target dimension.
  const Matrix<float> X = testutil::random_matrix(400, 128, 5);
  const Matrix<float> P = random_projection(X, 32, 6);
  double ratio_sum = 0.0;
  const SqEuclidean sq{};
  Matrix<float> zero_in(1, 128);
  Matrix<float> zero_out(1, 32);
  for (index_t i = 0; i < X.rows(); ++i) {
    const float in = sq(X.row(i), zero_in.row(0), 128);
    const float out = sq(P.row(i), zero_out.row(0), 32);
    ratio_sum += out / in;
  }
  EXPECT_NEAR(ratio_sum / X.rows(), 1.0, 0.1);
}

TEST(RandomProjection, ApproximatelyPreservesPairwiseDistances) {
  // JL: with d_out = 32, most pairwise distances survive within ~40%.
  const Matrix<float> X = testutil::random_matrix(60, 128, 7);
  const Matrix<float> P = random_projection(X, 32, 8);
  const Euclidean m{};
  int within = 0, total = 0;
  for (index_t i = 0; i < X.rows(); ++i)
    for (index_t j = i + 1; j < X.rows(); ++j) {
      const float din = m(X.row(i), X.row(j), 128);
      const float dout = m(P.row(i), P.row(j), 32);
      if (din > 0 && dout / din > 0.6f && dout / din < 1.4f) ++within;
      ++total;
    }
  EXPECT_GT(static_cast<double>(within) / total, 0.9);
}

TEST(RandomProjection, PreservesNeighborhoodStructure) {
  // The reason the paper uses it as an NN preprocessor: the projected-space
  // NN should have a small rank in the original space. Queries are held-out
  // rows of the same clustered distribution.
  const Matrix<float> pool = testutil::clustered_matrix(330, 64, 6, 9);
  const auto [X, Q] = testutil::split_rows(pool, 300);
  const Matrix<float> pool_p = random_projection(pool, 16, 11);
  const auto [XP, QP] = testutil::split_rows(pool_p, 300);

  const Euclidean m{};
  std::vector<index_t> original_ranks;
  for (index_t qi = 0; qi < Q.rows(); ++qi) {
    // NN in projected space.
    dist_t best = kInfDist;
    index_t best_id = 0;
    for (index_t j = 0; j < XP.rows(); ++j) {
      const dist_t d = m(QP.row(qi), XP.row(j), 16);
      if (d < best) {
        best = d;
        best_id = j;
      }
    }
    // Its rank in the original 64-d space.
    const dist_t d_orig = m(Q.row(qi), X.row(best_id), 64);
    index_t rank = 0;
    for (index_t j = 0; j < X.rows(); ++j)
      if (m(Q.row(qi), X.row(j), 64) < d_orig) ++rank;
    original_ranks.push_back(rank);
  }
  std::sort(original_ranks.begin(), original_ranks.end());
  // JL preserves distances to ~1/sqrt(d_out) relative error, not exact NN
  // ranks among near-equidistant in-cluster points; "useful preprocessor"
  // means the projected NN keeps a small original rank (here: within the
  // top ~7% of a 300-point database at the median).
  EXPECT_LE(original_ranks[original_ranks.size() / 2], 20u);
}

TEST(RandomProjectionSparse, SameContractAsDense) {
  const Matrix<float> X = testutil::random_matrix(200, 96, 12);
  const Matrix<float> P = random_projection_sparse(X, 24, 13);
  EXPECT_EQ(P.rows(), 200u);
  EXPECT_EQ(P.cols(), 24u);
  const SqEuclidean sq{};
  Matrix<float> zero_in(1, 96), zero_out(1, 24);
  double ratio_sum = 0.0;
  for (index_t i = 0; i < X.rows(); ++i)
    ratio_sum += sq(P.row(i), zero_out.row(0), 24) /
                 sq(X.row(i), zero_in.row(0), 96);
  EXPECT_NEAR(ratio_sum / X.rows(), 1.0, 0.15);
}

}  // namespace
}  // namespace rbc::data
