#include <gtest/gtest.h>

#include <tuple>

#include "baselines/kdtree.hpp"
#include "test_util.hpp"

namespace rbc {
namespace {

KnnResult kdtree_batch(const KdTree& tree, const Matrix<float>& Q, index_t k) {
  KnnResult result(Q.rows(), k);
  for (index_t qi = 0; qi < Q.rows(); ++qi) {
    TopK top(k);
    tree.knn(Q.row(qi), k, top);
    top.extract_sorted(result.dists.row(qi), result.ids.row(qi));
  }
  return result;
}

class KdTreeProperty
    : public ::testing::TestWithParam<std::tuple<index_t, index_t, index_t>> {
};

TEST_P(KdTreeProperty, KnnEqualsBruteForce) {
  const auto [n, d, k] = GetParam();
  const Matrix<float> X = testutil::clustered_matrix(n, d, 4, n * 3 + d);
  const Matrix<float> Q = testutil::random_matrix(30, d, n, -6.0f, 6.0f);
  KdTree tree;
  tree.build(X);
  EXPECT_TRUE(testutil::knn_equal(testutil::naive_knn(Q, X, k),
                                  kdtree_batch(tree, Q, k)));
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, KdTreeProperty,
    ::testing::Combine(::testing::Values<index_t>(5, 64, 1'000),
                       ::testing::Values<index_t>(1, 4, 16),
                       ::testing::Values<index_t>(1, 7)),
    [](const auto& info) {
      return "n" + std::to_string(std::get<0>(info.param)) + "_d" +
             std::to_string(std::get<1>(info.param)) + "_k" +
             std::to_string(std::get<2>(info.param));
    });

TEST(KdTree, AllPointsIdenticalForcesLeaf) {
  Matrix<float> X(100, 5);
  for (index_t i = 0; i < X.rows(); ++i)
    for (index_t j = 0; j < X.cols(); ++j) X.at(i, j) = 3.0f;
  KdTree tree;
  tree.build(X);
  Matrix<float> q(1, 5);
  TopK top(4);
  tree.knn(q.row(0), 4, top);
  std::vector<dist_t> d(4);
  std::vector<index_t> ids(4);
  top.extract_sorted(d.data(), ids.data());
  // Ties break by id: 0, 1, 2, 3.
  EXPECT_EQ(ids, (std::vector<index_t>{0, 1, 2, 3}));
}

TEST(KdTree, DuplicateHeavyData) {
  const Matrix<float> base = testutil::random_matrix(60, 4, 1);
  const Matrix<float> X = testutil::with_duplicates(base, 120);
  const Matrix<float> Q = testutil::random_matrix(20, 4, 2);
  KdTree tree;
  tree.build(X);
  EXPECT_TRUE(testutil::knn_equal(testutil::naive_knn(Q, X, 6),
                                  kdtree_batch(tree, Q, 6)));
}

TEST(KdTree, LeafSizeOneStillCorrect) {
  const Matrix<float> X = testutil::clustered_matrix(500, 6, 5, 3);
  const Matrix<float> Q = testutil::random_matrix(20, 6, 4, -6.0f, 6.0f);
  KdTree tree;
  tree.build(X, /*leaf_size=*/1);
  EXPECT_TRUE(testutil::knn_equal(testutil::naive_knn(Q, X, 3),
                                  kdtree_batch(tree, Q, 3)));
}

TEST(KdTree, LowDimPruningIsEffective) {
  // The motivation for the baseline (paper §7.1): kd-trees excel in low d.
  const index_t n = 8'000;
  const Matrix<float> X = testutil::random_matrix(n, 3, 5);
  KdTree tree;
  tree.build(X);
  const Matrix<float> Q = testutil::random_matrix(50, 3, 6);
  counters::Scope scope;
  for (index_t qi = 0; qi < Q.rows(); ++qi) {
    TopK top(1);
    tree.knn(Q.row(qi), 1, top);
  }
  EXPECT_LT(scope.delta(), 50ull * n / 10)
      << "kd-tree should visit <10% of a 3-d database";
}

TEST(KdTree, EmptyAndSinglePoint) {
  KdTree empty_tree;
  Matrix<float> empty(0, 3);
  empty_tree.build(empty);
  Matrix<float> q(1, 3);
  TopK top(1);
  empty_tree.knn(q.row(0), 1, top);
  EXPECT_EQ(top.size(), 0u);

  Matrix<float> one(1, 3);
  one.at(0, 2) = 4.0f;
  KdTree tree;
  tree.build(one);
  const auto [d, id] = tree.nn(q.row(0));
  EXPECT_EQ(id, 0u);
  EXPECT_FLOAT_EQ(d, 4.0f);
}

}  // namespace
}  // namespace rbc
