#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <vector>

#include "parallel/parallel_for.hpp"
#include "parallel/parallel_reduce.hpp"
#include "parallel/runtime.hpp"

namespace rbc {
namespace {

TEST(ParallelFor, VisitsEveryIndexExactlyOnce) {
  const index_t n = 10'000;
  std::vector<std::atomic<int>> visits(n);
  parallel_for(0, n, [&](index_t i) { visits[i].fetch_add(1); });
  for (index_t i = 0; i < n; ++i) EXPECT_EQ(visits[i].load(), 1) << i;
}

TEST(ParallelFor, EmptyRangeIsNoop) {
  int calls = 0;
  parallel_for(5, 5, [&](index_t) { ++calls; });
  EXPECT_EQ(calls, 0);
}

TEST(ParallelForDynamic, VisitsEveryIndexExactlyOnce) {
  const index_t n = 5'000;
  std::vector<std::atomic<int>> visits(n);
  parallel_for_dynamic(0, n, [&](index_t i) { visits[i].fetch_add(1); }, 3);
  for (index_t i = 0; i < n; ++i) EXPECT_EQ(visits[i].load(), 1);
}

TEST(ParallelForBlocked, BlocksTileTheRange) {
  const index_t n = 1'237;  // deliberately not a multiple of the grain
  std::vector<std::atomic<int>> visits(n);
  std::atomic<int> blocks{0};
  parallel_for_blocked(0, n, 100, [&](index_t lo, index_t hi) {
    EXPECT_LT(lo, hi);
    EXPECT_LE(hi - lo, 100u);
    blocks.fetch_add(1);
    for (index_t i = lo; i < hi; ++i) visits[i].fetch_add(1);
  });
  for (index_t i = 0; i < n; ++i) EXPECT_EQ(visits[i].load(), 1);
  EXPECT_EQ(blocks.load(), 13);  // ceil(1237 / 100)
}

TEST(ParallelForBlocked, GrainBelowOneIsClamped) {
  std::atomic<int> total{0};
  parallel_for_blocked(0, 10, 0, [&](index_t lo, index_t hi) {
    total.fetch_add(static_cast<int>(hi - lo));
  });
  EXPECT_EQ(total.load(), 10);
}

TEST(ParallelReduce, SumMatchesSerial) {
  const index_t n = 100'000;
  const auto sum = parallel_reduce<std::uint64_t>(
      0, n, 0,
      [](std::uint64_t acc, index_t i) { return acc + i; },
      [](std::uint64_t a, std::uint64_t b) { return a + b; });
  EXPECT_EQ(sum, static_cast<std::uint64_t>(n - 1) * n / 2);
}

TEST(ParallelArgmin, FindsGlobalMinimum) {
  const index_t n = 50'000;
  std::vector<float> values(n);
  for (index_t i = 0; i < n; ++i)
    values[i] = static_cast<float>((i * 2654435761u) % 100'000);
  values[31'337] = -5.0f;
  const auto result = parallel_argmin<float>(
      0, n, std::numeric_limits<float>::infinity(),
      [&](index_t i) { return values[i]; });
  EXPECT_EQ(result.index, 31'337u);
  EXPECT_EQ(result.value, -5.0f);
}

TEST(ParallelArgmin, TiesResolveToSmallestIndex) {
  std::vector<float> values(1000, 1.0f);
  values[100] = 0.5f;
  values[900] = 0.5f;
  const auto result = parallel_argmin<float>(
      0, 1000, std::numeric_limits<float>::infinity(),
      [&](index_t i) { return values[i]; });
  EXPECT_EQ(result.index, 100u);
}

TEST(Runtime, ThreadLimitRestores) {
  const int before = max_threads();
  {
    ThreadLimit limit(1);
    EXPECT_EQ(max_threads(), 1);
  }
  EXPECT_EQ(max_threads(), before);
}

TEST(Runtime, SingleThreadExecutionStillCoversRange) {
  ThreadLimit limit(1);
  const index_t n = 1'000;
  std::vector<int> visits(n, 0);
  parallel_for(0, n, [&](index_t i) { ++visits[i]; });
  EXPECT_EQ(std::accumulate(visits.begin(), visits.end(), 0),
            static_cast<int>(n));
}

}  // namespace
}  // namespace rbc
