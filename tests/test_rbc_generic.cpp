// Generic-metric RBC over strings (edit distance) and graph nodes (shortest
// path) — the paper's §6 claim that the machinery works for arbitrary metric
// spaces.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/counters.hpp"
#include "common/rng.hpp"
#include "distance/edit_distance.hpp"
#include "distance/graph_metric.hpp"
#include "rbc/rbc_generic.hpp"

namespace rbc {
namespace {

std::vector<std::string> random_words(index_t count, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<std::string> words(count);
  for (auto& w : words) {
    const index_t len = 3 + rng.uniform_index(10);
    w.resize(len);
    for (auto& ch : w) ch = static_cast<char>('a' + rng.uniform_index(6));
  }
  return words;
}

TEST(RbcGenericExact, StringSpaceEqualsBruteForce) {
  const StringSpace space(random_words(400, 1));
  RbcGenericExact<StringSpace> index;
  index.build(space, {.num_reps = 20, .seed = 2});

  const auto queries = random_words(30, 3);
  for (const auto& q : queries) {
    const auto expected = generic_knn(space, q, 5);
    const auto actual = index.search(q, 5);
    EXPECT_EQ(expected, actual) << "query " << q;
  }
}

TEST(RbcGenericExact, StringSpaceWithHeavyDuplication) {
  auto words = random_words(60, 4);
  words.insert(words.end(), words.begin(), words.end());  // every word twice
  const StringSpace space(words);
  RbcGenericExact<StringSpace> index;
  index.build(space, {.num_reps = 12, .seed = 5});

  for (const auto& q : random_words(20, 6)) {
    EXPECT_EQ(generic_knn(space, q, 4), index.search(q, 4));
  }
}

TEST(RbcGenericExact, PruneFlagCombinationsStayExact) {
  const StringSpace space(random_words(300, 7));
  const auto queries = random_words(15, 8);
  for (const bool overlap : {false, true})
    for (const bool lemma : {false, true})
      for (const bool early : {false, true}) {
        RbcParams params;
        params.num_reps = 17;
        params.seed = 9;
        params.use_overlap_rule = overlap;
        params.use_lemma_rule = lemma;
        params.use_early_exit = early;
        RbcGenericExact<StringSpace> index;
        index.build(space, params);
        for (const auto& q : queries)
          EXPECT_EQ(generic_knn(space, q, 3), index.search(q, 3));
      }
}

GraphSpace ring_with_chords(index_t n, std::uint64_t seed) {
  GraphSpace g(n);
  Rng rng(seed);
  for (index_t i = 0; i < n; ++i)
    g.add_edge(i, (i + 1) % n, rng.uniform_float(0.5f, 2.0f));
  for (index_t e = 0; e < n / 2; ++e) {
    const index_t u = rng.uniform_index(n), v = rng.uniform_index(n);
    if (u != v) g.add_edge(u, v, rng.uniform_float(1.0f, 4.0f));
  }
  g.finalize();
  return g;
}

TEST(RbcGenericExact, GraphSpaceEqualsBruteForce) {
  const GraphSpace space = ring_with_chords(200, 10);
  ASSERT_TRUE(space.connected());
  RbcGenericExact<GraphSpace> index;
  index.build(space, {.num_reps = 14, .seed = 11});

  for (index_t q = 0; q < space.size(); q += 13) {
    const auto expected = generic_knn(space, q, 6);
    const auto actual = index.search(q, 6);
    EXPECT_EQ(expected, actual) << "query node " << q;
  }
}

std::vector<std::string> clustered_words(index_t count, index_t num_bases,
                                         std::uint64_t seed) {
  // Low-intrinsic-dimension string data: a few long base words plus 1-2
  // random single-character mutations each — the string analogue of tight
  // clusters, where the RBC's pruning has structure to exploit.
  Rng rng(seed);
  std::vector<std::string> bases(num_bases);
  for (auto& b : bases) {
    b.resize(24);
    for (auto& ch : b) ch = static_cast<char>('a' + rng.uniform_index(26));
  }
  std::vector<std::string> words(count);
  for (auto& w : words) {
    w = bases[rng.uniform_index(num_bases)];
    const index_t mutations = 1 + rng.uniform_index(2);
    for (index_t m = 0; m < mutations; ++m)
      w[rng.uniform_index(static_cast<index_t>(w.size()))] =
          static_cast<char>('a' + rng.uniform_index(26));
  }
  return words;
}

TEST(RbcGenericExact, WorkBelowBruteForceOnClusteredStrings) {
  const StringSpace space(clustered_words(1'000, 20, 12));
  RbcGenericExact<StringSpace> index;
  index.build(space, {.num_reps = 32, .seed = 13});
  SearchStats stats;
  for (const auto& q : clustered_words(10, 20, 12))  // same distribution
    (void)index.search(q, 1, &stats);
  EXPECT_LT(stats.dist_evals_per_query(), 0.5 * space.size());
}

/// StringSpace with the banded DP hooked in: distance_bounded returns the
/// exact distance when it is <= band and any value > band otherwise (the
/// BoundedMetricSpace contract), in O(band * len) instead of O(len^2).
class BandedStringSpace {
 public:
  using Point = std::string;

  explicit BandedStringSpace(std::vector<std::string> items)
      : items_(std::move(items)) {}

  index_t size() const { return static_cast<index_t>(items_.size()); }
  const std::string& operator[](index_t i) const { return items_[i]; }
  double distance(const std::string& a, const std::string& b) const {
    return static_cast<double>(edit_distance(a, b));
  }
  double distance_bounded(const std::string& a, const std::string& b,
                          double band) const {
    // Same clamping as metricspace's EditSpace: an infinite band means "no
    // useful bound yet" (full DP), a finite one floors to an integer band
    // (edit distances are integral, so nothing is lost).
    if (!(band < 1e9)) return distance(a, b);
    const auto b_int = static_cast<index_t>(band < 0.0 ? 0.0 : band);
    return static_cast<double>(edit_distance_banded(a, b, b_int));
  }

 private:
  std::vector<std::string> items_;
};

static_assert(!BoundedMetricSpace<StringSpace>);
static_assert(BoundedMetricSpace<BandedStringSpace>);

TEST(RbcGenericExact, BandedPruningIsBitIdenticalToPlainScan) {
  // A/B exactness: the same searches through the banded fast path
  // (distance_bounded) and the plain full-DP path must agree on every
  // (dist, id) pair — including tie order, which heavy duplication forces.
  // This locks the clamp-never-displaces-a-true-neighbor argument in
  // rbc_generic.hpp's offer loop and bf_generic.hpp's pruned subset scan.
  auto words = clustered_words(500, 12, 21);
  words.insert(words.end(), words.begin(), words.begin() + 100);  // ties
  const StringSpace plain(words);
  const BandedStringSpace banded(words);

  RbcParams params;
  params.num_reps = 20;
  params.seed = 22;
  RbcGenericExact<StringSpace> plain_index;
  RbcGenericExact<BandedStringSpace> banded_index;
  plain_index.build(plain, params);
  banded_index.build(banded, params);

  std::vector<index_t> all_ids(words.size());
  for (index_t i = 0; i < static_cast<index_t>(all_ids.size()); ++i)
    all_ids[i] = i;

  for (const auto& q : clustered_words(25, 12, 23)) {
    for (const index_t k : {index_t{1}, index_t{4}, index_t{10}}) {
      EXPECT_EQ(plain_index.search(q, k), banded_index.search(q, k))
          << "rbc query " << q << " k " << k;
      // The pruned subset scan (banded) vs the compute-everything reference.
      EXPECT_EQ(generic_knn_subset(plain, q, all_ids, k),
                generic_knn_subset_pruned(banded, q, all_ids, k))
          << "bf query " << q << " k " << k;
    }
  }

  // The banded path must do measurably less DP work: band * len vs len^2
  // cells per comparison on 24-char clustered words.
  counters::reset();
  SearchStats banded_stats;
  for (const auto& q : clustered_words(25, 12, 23))
    (void)banded_index.search(q, 5, &banded_stats);
  const std::uint64_t banded_cells = counters::total_metric_cost();
  counters::reset();
  SearchStats plain_stats;
  for (const auto& q : clustered_words(25, 12, 23))
    (void)plain_index.search(q, 5, &plain_stats);
  const std::uint64_t plain_cells = counters::total_metric_cost();
  EXPECT_EQ(banded_stats.dist_evals(), plain_stats.dist_evals());
  EXPECT_LT(banded_cells, plain_cells);
}

TEST(RbcGenericOneShot, HighRecallWithLargeLists) {
  const StringSpace space(random_words(500, 15));
  RbcParams params;
  params.num_reps = 40;
  params.points_per_rep = 80;
  params.seed = 16;
  RbcGenericOneShot<StringSpace> index;
  index.build(space, params);

  const auto queries = random_words(60, 17);
  index_t hits = 0;
  for (const auto& q : queries) {
    const auto expected = generic_knn(space, q, 1);
    const auto actual = index.search(q, 1);
    ASSERT_FALSE(actual.empty());
    if (actual[0].dist == expected[0].dist) ++hits;  // same-distance answer
  }
  EXPECT_GE(hits, queries.size() * 7 / 10) << "one-shot recall collapsed";
}

TEST(RbcGenericOneShot, MultiProbeNeverReturnsDuplicates) {
  const StringSpace space(random_words(200, 18));
  RbcParams params;
  params.num_reps = 10;
  params.points_per_rep = 60;
  params.num_probes = 3;
  params.seed = 19;
  RbcGenericOneShot<StringSpace> index;
  index.build(space, params);

  for (const auto& q : random_words(20, 20)) {
    const auto result = index.search(q, 10);
    for (std::size_t i = 0; i < result.size(); ++i)
      for (std::size_t j = i + 1; j < result.size(); ++j)
        EXPECT_NE(result[i].id, result[j].id);
  }
}

}  // namespace
}  // namespace rbc
