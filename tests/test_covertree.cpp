#include <gtest/gtest.h>

#include <tuple>

#include "baselines/covertree.hpp"
#include "test_util.hpp"

namespace rbc {
namespace {

KnnResult covertree_batch(const CoverTree<>& tree, const Matrix<float>& Q,
                          index_t k) {
  KnnResult result(Q.rows(), k);
  for (index_t qi = 0; qi < Q.rows(); ++qi) {
    TopK top(k);
    tree.knn(Q.row(qi), k, top);
    top.extract_sorted(result.dists.row(qi), result.ids.row(qi));
  }
  return result;
}

class CoverTreeProperty
    : public ::testing::TestWithParam<std::tuple<index_t, index_t, index_t>> {
};

TEST_P(CoverTreeProperty, KnnEqualsBruteForce) {
  const auto [n, d, k] = GetParam();
  const Matrix<float> X = testutil::clustered_matrix(n, d, 5, n + d);
  const Matrix<float> Q = testutil::random_matrix(25, d, n, -6.0f, 6.0f);
  CoverTree<> tree;
  tree.build(X);
  ASSERT_TRUE(tree.check_invariants());
  EXPECT_TRUE(testutil::knn_equal(testutil::naive_knn(Q, X, k),
                                  covertree_batch(tree, Q, k)));
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, CoverTreeProperty,
    ::testing::Combine(::testing::Values<index_t>(10, 100, 800),
                       ::testing::Values<index_t>(2, 8, 21),
                       ::testing::Values<index_t>(1, 5)),
    [](const auto& info) {
      return "n" + std::to_string(std::get<0>(info.param)) + "_d" +
             std::to_string(std::get<1>(info.param)) + "_k" +
             std::to_string(std::get<2>(info.param));
    });

TEST(CoverTree, HandlesDuplicatesViaFolding) {
  const Matrix<float> base = testutil::random_matrix(50, 6, 1);
  const Matrix<float> X = testutil::with_duplicates(base, 50);
  CoverTree<> tree;
  tree.build(X);
  ASSERT_TRUE(tree.check_invariants());
  // Duplicate folding is best-effort: a duplicate folds when the insert
  // descent reaches the original node, which the covering invariant does
  // not always guarantee. Most of the 50 duplicates must fold; queries stay
  // exact either way.
  EXPECT_LT(tree.num_nodes(), 65u);
  EXPECT_GE(tree.num_nodes(), 50u);

  const Matrix<float> Q = testutil::random_matrix(20, 6, 2);
  EXPECT_TRUE(testutil::knn_equal(testutil::naive_knn(Q, X, 4),
                                  covertree_batch(tree, Q, 4)));
}

TEST(CoverTree, SinglePoint) {
  Matrix<float> X(1, 3);
  X.at(0, 0) = 5.0f;
  CoverTree<> tree;
  tree.build(X);
  Matrix<float> q(1, 3);
  const auto [d, id] = tree.nn(q.row(0));
  EXPECT_EQ(id, 0u);
  EXPECT_FLOAT_EQ(d, 5.0f);
}

TEST(CoverTree, RootRaisingForSpreadOutInsertions) {
  // Points at exponentially growing distances force repeated root raising.
  Matrix<float> X(10, 1);
  for (index_t i = 0; i < 10; ++i)
    X.at(i, 0) = static_cast<float>(1 << i);  // 1, 2, 4, ..., 512
  CoverTree<> tree;
  tree.build(X);
  ASSERT_TRUE(tree.check_invariants());
  EXPECT_GE(tree.root_level(), 8);  // must cover distance 511 from root

  Matrix<float> q(1, 1);
  q.at(0, 0) = 100.0f;
  const auto [d, id] = tree.nn(q.row(0));
  EXPECT_EQ(id, 7u);  // 128 is the closest to 100 (|100-64|=36 > |100-128|=28)
}

TEST(CoverTree, QueryOnDatabasePointFindsItself) {
  const Matrix<float> X = testutil::random_matrix(300, 9, 3);
  CoverTree<> tree;
  tree.build(X);
  for (index_t i = 0; i < X.rows(); i += 37) {
    const auto [d, id] = tree.nn(X.row(i));
    EXPECT_EQ(d, 0.0f);
    EXPECT_EQ(id, i);
  }
}

TEST(CoverTree, L1MetricSupported) {
  const Matrix<float> X = testutil::clustered_matrix(400, 7, 4, 4);
  const Matrix<float> Q = testutil::random_matrix(15, 7, 5, -6.0f, 6.0f);
  CoverTree<L1> tree;
  tree.build(X, L1{});
  ASSERT_TRUE(tree.check_invariants());
  const KnnResult expected = testutil::naive_knn(Q, X, 3, L1{});
  KnnResult actual(Q.rows(), 3);
  for (index_t qi = 0; qi < Q.rows(); ++qi) {
    TopK top(3);
    tree.knn(Q.row(qi), 3, top);
    top.extract_sorted(actual.dists.row(qi), actual.ids.row(qi));
  }
  EXPECT_TRUE(testutil::knn_equal(expected, actual));
}

TEST(CoverTree, PrunesWorkOnClusteredData) {
  const index_t n = 4'000;
  const Matrix<float> X = testutil::clustered_matrix(n, 8, 10, 6);
  CoverTree<> tree;
  tree.build(X);
  const Matrix<float> Q = testutil::random_matrix(20, 8, 7, -6.0f, 6.0f);
  counters::Scope scope;
  for (index_t qi = 0; qi < Q.rows(); ++qi) {
    TopK top(1);
    tree.knn(Q.row(qi), 1, top);
  }
  // Branch-and-bound should visit well under the full database per query.
  EXPECT_LT(scope.delta(), 20ull * n / 2);
}

}  // namespace
}  // namespace rbc
