// Metric-axiom property tests for every shipped metric functor, plus the
// padding-invariance contract of Matrix rows.
#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <tuple>

#include "common/matrix.hpp"
#include "common/rng.hpp"
#include "distance/metrics.hpp"
#include "test_util.hpp"

namespace rbc {
namespace {

// Type-erased metric wrapper so TEST_P can sweep over the functors.
struct AnyMetric {
  std::string name;
  bool is_true_metric;
  float (*fn)(const float*, const float*, index_t);
};

const AnyMetric kMetrics[] = {
    {"l2", true,
     [](const float* a, const float* b, index_t d) {
       return Euclidean{}(a, b, d);
     }},
    {"l1", true,
     [](const float* a, const float* b, index_t d) { return L1{}(a, b, d); }},
    {"linf", true,
     [](const float* a, const float* b, index_t d) {
       return LInf{}(a, b, d);
     }},
    {"sq_l2", false,
     [](const float* a, const float* b, index_t d) {
       return SqEuclidean{}(a, b, d);
     }},
    {"cosine", false,
     [](const float* a, const float* b, index_t d) {
       return Cosine{}(a, b, d);
     }},
};

class MetricAxiomTest
    : public ::testing::TestWithParam<std::tuple<int, index_t>> {
 protected:
  const AnyMetric& metric() const { return kMetrics[std::get<0>(GetParam())]; }
  index_t dim() const { return std::get<1>(GetParam()); }
};

TEST_P(MetricAxiomTest, IdentityOfIndiscernibles) {
  Matrix<float> pts = testutil::random_matrix(32, dim(), 7);
  for (index_t i = 0; i < pts.rows(); ++i)
    EXPECT_NEAR(metric().fn(pts.row(i), pts.row(i), dim()), 0.0f, 1e-6f);
}

TEST_P(MetricAxiomTest, NonNegativity) {
  Matrix<float> pts = testutil::random_matrix(32, dim(), 11);
  for (index_t i = 0; i + 1 < pts.rows(); ++i)
    EXPECT_GE(metric().fn(pts.row(i), pts.row(i + 1), dim()), 0.0f);
}

TEST_P(MetricAxiomTest, Symmetry) {
  Matrix<float> pts = testutil::random_matrix(32, dim(), 13);
  for (index_t i = 0; i + 1 < pts.rows(); i += 2) {
    const float ab = metric().fn(pts.row(i), pts.row(i + 1), dim());
    const float ba = metric().fn(pts.row(i + 1), pts.row(i), dim());
    EXPECT_NEAR(ab, ba, 1e-5f * std::max(1.0f, ab));
  }
}

TEST_P(MetricAxiomTest, TriangleInequalityForTrueMetrics) {
  if (!metric().is_true_metric) GTEST_SKIP() << "not a true metric";
  Matrix<float> pts = testutil::random_matrix(60, dim(), 17);
  for (index_t i = 0; i + 2 < pts.rows(); i += 3) {
    const float ab = metric().fn(pts.row(i), pts.row(i + 1), dim());
    const float bc = metric().fn(pts.row(i + 1), pts.row(i + 2), dim());
    const float ac = metric().fn(pts.row(i), pts.row(i + 2), dim());
    EXPECT_LE(ac, ab + bc + 1e-4f * (ab + bc + 1.0f));
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllMetrics, MetricAxiomTest,
    ::testing::Combine(::testing::Range(0, 5),
                       ::testing::Values<index_t>(3, 21, 74)),
    [](const auto& info) {
      return kMetrics[std::get<0>(info.param)].name + "_d" +
             std::to_string(std::get<1>(info.param));
    });

TEST(Metrics, SquaredL2ViolatesTriangleInequality) {
  // Witness that SqEuclidean is correctly marked as not a true metric:
  // points 0, 1, 2 on a line; sq dists are 1, 1, 4 and 4 > 1 + 1.
  const float a[1] = {0.0f}, b[1] = {1.0f}, c[1] = {2.0f};
  const SqEuclidean m{};
  EXPECT_GT(m(a, c, 1), m(a, b, 1) + m(b, c, 1));
  static_assert(!SqEuclidean::is_true_metric);
}

TEST(Metrics, EuclideanVsSqEuclideanConsistency) {
  Matrix<float> pts = testutil::random_matrix(16, 30, 23);
  for (index_t i = 0; i + 1 < pts.rows(); ++i) {
    const float l2 = Euclidean{}(pts.row(i), pts.row(i + 1), 30);
    const float sq = SqEuclidean{}(pts.row(i), pts.row(i + 1), 30);
    EXPECT_NEAR(l2 * l2, sq, 1e-3f * std::max(1.0f, sq));
  }
}

TEST(Metrics, CosineRangeAndScaleInvariance) {
  Matrix<float> pts = testutil::random_matrix(16, 25, 29);
  const Cosine m{};
  for (index_t i = 0; i + 1 < pts.rows(); ++i) {
    const float d = m(pts.row(i), pts.row(i + 1), 25);
    EXPECT_GE(d, -1e-5f);
    EXPECT_LE(d, 2.0f + 1e-5f);
  }
  // Scaling one argument must not change cosine distance.
  std::vector<float> scaled(25);
  for (index_t j = 0; j < 25; ++j) scaled[j] = 3.5f * pts.at(0, j);
  EXPECT_NEAR(m(pts.row(0), pts.row(1), 25), m(scaled.data(), pts.row(1), 25),
              1e-5f);
}

TEST(Metrics, CosineZeroVectorIsMaximallyDistant) {
  const float zero[4] = {0, 0, 0, 0};
  const float v[4] = {1, 2, 3, 4};
  EXPECT_EQ(Cosine{}(zero, v, 4), 1.0f);
}

TEST(Metrics, PaddedRowsGiveSameDistanceAsLogicalRows) {
  // The Matrix zero-padding contract: computing over stride() elements is
  // mathematically equal to computing over cols() elements (padding lanes
  // contribute |0-0| = 0). Summation *order* differs between the two widths,
  // so equality holds to rounding, not bitwise.
  Matrix<float> m = testutil::random_matrix(4, 21, 31);
  for (index_t i = 0; i + 1 < m.rows(); ++i) {
    const float l2_cols = Euclidean{}(m.row(i), m.row(i + 1), m.cols());
    const float l2_pad = Euclidean{}(m.row(i), m.row(i + 1), m.stride());
    EXPECT_NEAR(l2_cols, l2_pad, 1e-5f * l2_cols);
    const float l1_cols = L1{}(m.row(i), m.row(i + 1), m.cols());
    const float l1_pad = L1{}(m.row(i), m.row(i + 1), m.stride());
    EXPECT_NEAR(l1_cols, l1_pad, 1e-5f * l1_cols);
  }
}

}  // namespace
}  // namespace rbc
