// Unit tests of the streaming-mutability subsystem (src/mutate/): delta and
// tombstone accounting, the background merge lifecycle, sharded insert
// routing and shard draining, the serving layer's mutation entry points,
// and range search over a mutated index. The cross-backend behavioral lock
// (mutate-then-search vs a scratch rebuild, the uniform error contract,
// mutated serialize round-trips) lives in tests/conformance.hpp; these
// tests pin the mechanics the matrix can't see from the outside.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "api/api.hpp"
#include "serve/service.hpp"
#include "test_util.hpp"

namespace rbc {
namespace {

Matrix<float> rows_of(const Matrix<float>& pool, index_t from, index_t n) {
  Matrix<float> out(n, pool.cols());
  for (index_t i = 0; i < n; ++i) out.copy_row_from(pool, from + i, i);
  return out;
}

IndexOptions inline_merge_options(index_t max_delta) {
  IndexOptions options;
  options.rbc.seed = 7;
  options.max_delta = max_delta;
  options.background_merge = false;
  return options;
}

TEST(MutableIndex, DeltaAndTombstoneAccounting) {
  const Matrix<float> pool = testutil::clustered_matrix(40, 6, 4, 301);
  auto index = make_index("bruteforce", inline_merge_options(1024));
  index->build(rows_of(pool, 0, 20));
  EXPECT_EQ(index->info().size, 20u);
  EXPECT_EQ(index->info().delta_rows, 0u);
  EXPECT_EQ(index->info().tombstones, 0u);
  EXPECT_TRUE(index->info().supports_mutation);

  const std::vector<index_t> new_ids{20, 21, 22};
  index->insert(rows_of(pool, 20, 3), new_ids);
  EXPECT_EQ(index->info().size, 23u);
  EXPECT_EQ(index->info().delta_rows, 3u);
  EXPECT_EQ(index->info().tombstones, 0u);

  // Two main rows become tombstones; one delta row disappears outright.
  const std::vector<index_t> dropped{3, 15, 21};
  EXPECT_EQ(index->remove(dropped), 3u);
  EXPECT_EQ(index->info().size, 20u);
  EXPECT_EQ(index->info().delta_rows, 2u);
  EXPECT_EQ(index->info().tombstones, 2u);

  const std::vector<index_t> live = index->live_ids();
  EXPECT_EQ(live.size(), 20u);
  EXPECT_EQ(std::count(live.begin(), live.end(), 3u), 0);
  EXPECT_EQ(std::count(live.begin(), live.end(), 21u), 0);
  EXPECT_EQ(std::count(live.begin(), live.end(), 22u), 1);

  // compact() folds everything back into the main structure.
  index->compact();
  EXPECT_EQ(index->info().size, 20u);
  EXPECT_EQ(index->info().delta_rows, 0u);
  EXPECT_EQ(index->info().tombstones, 0u);
  EXPECT_EQ(index->live_ids(), live);
}

TEST(MutableIndex, BackgroundMergeFoldsTheDelta) {
  const Matrix<float> pool = testutil::clustered_matrix(60, 6, 4, 302);
  IndexOptions options;
  options.rbc.seed = 7;
  options.max_delta = 4;
  options.background_merge = true;
  auto index = make_index("rbc-exact", options);
  index->build(rows_of(pool, 0, 30));

  // Crossing max_delta launches the merge thread; compact() joins it (and
  // folds whatever is left), so afterwards the structure must be clean.
  const std::vector<index_t> batch{30, 31, 32, 33};
  index->insert(rows_of(pool, 30, 4), batch);
  index->compact();
  EXPECT_EQ(index->info().size, 34u);
  EXPECT_EQ(index->info().delta_rows, 0u);
  EXPECT_EQ(index->info().tombstones, 0u);

  // The merged structure answers exactly like a scratch build over the
  // same 34 rows (ids are 0..33, so a plain build matches).
  auto scratch = make_index("rbc-exact", options);
  scratch->build(rows_of(pool, 0, 34));
  const Matrix<float> Q = testutil::random_matrix(8, 6, 303);
  const KnnResult a = index->knn_search({.queries = &Q, .k = 5}).knn;
  const KnnResult b = scratch->knn_search({.queries = &Q, .k = 5}).knn;
  EXPECT_TRUE(testutil::knn_equal(a, b));
}

TEST(MutableIndex, EmptyBuildThenInsertBecomesSearchable) {
  auto index = make_index("bruteforce", inline_merge_options(1024));
  const Matrix<float> empty(0, 5);
  index->build(empty);  // a valid built state with zero rows
  EXPECT_EQ(index->info().size, 0u);
  EXPECT_EQ(index->info().dim, 5u);

  const Matrix<float> pool = testutil::clustered_matrix(10, 5, 2, 304);
  const std::vector<index_t> ids{0, 1, 2};
  index->insert(rows_of(pool, 0, 3), ids);
  EXPECT_EQ(index->info().size, 3u);
  const Matrix<float> Q = testutil::random_matrix(2, 5, 305);
  const KnnResult r = index->knn_search({.queries = &Q, .k = 3}).knn;
  for (index_t qi = 0; qi < Q.rows(); ++qi) {
    EXPECT_LE(r.dists.at(qi, 0), r.dists.at(qi, 1));
    EXPECT_LE(r.dists.at(qi, 1), r.dists.at(qi, 2));
  }
}

TEST(MutableIndex, RangeSearchSeesDeltaAndMasksTombstones) {
  const Matrix<float> pool = testutil::clustered_matrix(50, 6, 4, 306);
  auto index = make_index("bruteforce", inline_merge_options(1024));
  index->build(rows_of(pool, 0, 30));
  const std::vector<index_t> new_ids{30, 31, 32, 33};
  index->insert(rows_of(pool, 30, 4), new_ids);
  const std::vector<index_t> dropped{5, 17, 31};
  ASSERT_EQ(index->remove(dropped), 3u);

  // Scratch reference over exactly the live rows, with the same ids: the
  // range answer (an exact set) must match id-for-id.
  std::vector<index_t> live = index->live_ids();
  Matrix<float> live_rows(static_cast<index_t>(live.size()), 6);
  for (index_t i = 0; i < live_rows.rows(); ++i)
    live_rows.copy_row_from(pool, live[i], i);
  auto scratch = make_index("bruteforce", inline_merge_options(1024));
  scratch->build_with_ids(live_rows, live);

  const Matrix<float> Q = testutil::random_matrix(5, 6, 307);
  for (const float radius : {0.5f, 2.0f, 10.0f}) {
    const RangeResponse a =
        index->range_search({.queries = &Q, .radius = radius});
    const RangeResponse b =
        scratch->range_search({.queries = &Q, .radius = radius});
    ASSERT_EQ(a.ids.size(), b.ids.size());
    for (std::size_t qi = 0; qi < a.ids.size(); ++qi)
      EXPECT_EQ(a.ids[qi], b.ids[qi]) << "radius=" << radius << " qi=" << qi;
  }
}

TEST(ShardedMutation, InsertsRouteToTheLeastFullShard) {
  // 2 rows over 3 shards: one shard starts empty and info().shards reports
  // only the answering shards; the first insert must fill the empty slot.
  const Matrix<float> pool = testutil::clustered_matrix(20, 5, 2, 308);
  IndexOptions options = inline_merge_options(1024);
  options.num_shards = 3;
  auto index = make_index("sharded:bruteforce", options);
  index->build(rows_of(pool, 0, 2));
  EXPECT_EQ(index->info().shards, 2u);

  const std::vector<index_t> first{10};
  index->insert(rows_of(pool, 2, 1), first);
  EXPECT_EQ(index->info().shards, 3u);
  EXPECT_EQ(index->info().size, 3u);

  // Draining every row of a shard makes it search-invisible again, and
  // searches still answer over what is left.
  const std::vector<index_t> drop{10};
  ASSERT_EQ(index->remove(drop), 1u);
  EXPECT_EQ(index->info().shards, 2u);
  const Matrix<float> Q = testutil::random_matrix(3, 5, 309);
  const KnnResult r = index->knn_search({.queries = &Q, .k = 2}).knn;
  for (index_t qi = 0; qi < Q.rows(); ++qi) {
    const std::set<index_t> got{r.ids.at(qi, 0), r.ids.at(qi, 1)};
    EXPECT_EQ(got, (std::set<index_t>{0, 1}));
  }
}

TEST(ShardedMutation, MutatedShardedSaveReloadsIdNative) {
  // After mutation the shard assignment no longer matches the positional
  // partition; the round-trip must restore the actual id routing (the
  // legacy derived assignment would misattribute every remapped id).
  const Matrix<float> pool = testutil::clustered_matrix(40, 6, 3, 310);
  IndexOptions options = inline_merge_options(1024);
  options.num_shards = 3;
  auto index = make_index("sharded:bruteforce", options);
  index->build(rows_of(pool, 0, 20));
  const std::vector<index_t> new_ids{100, 101};
  index->insert(rows_of(pool, 20, 2), new_ids);
  const std::vector<index_t> dropped{0, 19};
  ASSERT_EQ(index->remove(dropped), 2u);

  std::stringstream stream;
  index->save(stream);
  const auto restored = load_index(stream);
  ASSERT_NE(restored, nullptr);
  EXPECT_EQ(restored->info().backend, "sharded:bruteforce");
  EXPECT_TRUE(restored->info().supports_mutation);
  EXPECT_EQ(restored->live_ids(), index->live_ids());

  const Matrix<float> Q = testutil::random_matrix(6, 6, 311);
  const KnnResult before = index->knn_search({.queries = &Q, .k = 4}).knn;
  const KnnResult after = restored->knn_search({.queries = &Q, .k = 4}).knn;
  EXPECT_TRUE(testutil::knn_equal(before, after));

  // The restored routing map accepts further mutation on the right shard.
  const std::vector<index_t> again{100};
  EXPECT_EQ(restored->remove(again), 1u);
  EXPECT_EQ(restored->info().size, index->info().size - 1);
}

TEST(ServiceMutation, InsertRemoveFlowThroughTheService) {
  const Matrix<float> pool = testutil::clustered_matrix(30, 6, 3, 312);
  auto index = make_index("bruteforce", inline_merge_options(1024));
  index->build(rows_of(pool, 0, 10));
  serve::SearchService service(std::move(index), {.max_batch = 16});

  // k is admitted against the live size: 10 rows now, 12 after the insert.
  const Matrix<float> Q = testutil::random_matrix(1, 6, 313);
  EXPECT_THROW((void)service.submit_batch(Q, 11), std::invalid_argument);

  const std::vector<index_t> new_ids{10, 11};
  service.insert(rows_of(pool, 10, 2), new_ids);
  std::future<KnnResult> f = service.submit_batch(Q, 11);
  const KnnResult r = f.get();
  EXPECT_EQ(r.ids.cols(), 11u);

  // Searches answer over the mutated database: a query equal to a freshly
  // inserted row finds it at distance zero.
  Matrix<float> probe(1, 6);
  probe.copy_row_from(pool, 11, 0);
  const serve::QueryResult nearest =
      service.submit(std::span<const float>(probe.row(0), 6), 1).get();
  EXPECT_EQ(nearest.ids[0], 11u);
  EXPECT_EQ(nearest.dists[0], 0.0f);

  EXPECT_EQ(service.remove(new_ids), 2u);
  EXPECT_THROW((void)service.submit_batch(Q, 11), std::invalid_argument);
  service.compact();
  EXPECT_EQ(service.index().info().delta_rows, 0u);
  EXPECT_EQ(service.index().info().tombstones, 0u);
  service.stop();
}

TEST(ServiceMutation, IncapableBackendRejectsServiceMutation) {
  const Matrix<float> X = testutil::clustered_matrix(12, 5, 2, 314);
  auto index = make_index("gpu-bf", {.gpu_workers = 2});
  index->build(X);
  serve::SearchService service(std::move(index), {});
  Matrix<float> one(1, 5);
  for (index_t j = 0; j < 5; ++j) one.at(0, j) = 1.0f;
  const std::vector<index_t> id{100};
  EXPECT_THROW(service.insert(one, id), std::runtime_error);
  EXPECT_THROW((void)service.remove(id), std::runtime_error);
  service.stop();
}

}  // namespace
}  // namespace rbc
