// The batched search service: submissions from many threads match the
// single-threaded ground truth, the dispatcher respects max_batch /
// max_wait_us, errors propagate (synchronously for malformed submissions,
// through the future for backend failures), and shutdown/drain complete
// every accepted query under in-flight load.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <future>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <vector>

#include "api/api.hpp"
#include "serve/service.hpp"
#include "test_util.hpp"

namespace rbc {
namespace {

using serve::QueryResult;
using serve::SearchService;
using serve::ServiceOptions;
using serve::ServiceStats;

std::unique_ptr<Index> built_index(const char* backend,
                                   const Matrix<float>& X) {
  auto index = make_index(backend, {.rbc = {.seed = 7}});
  index->build(X);
  return index;
}

/// Test double: forwards to brute force after an optional sleep, recording
/// the row count of every request it sees — makes batch formation
/// observable and lets tests hold a worker busy deterministically.
class SlowRecordingIndex final : public Index {
 public:
  SlowRecordingIndex(int sleep_ms, std::vector<index_t>* sizes,
                     std::mutex* mutex)
      : sleep_ms_(sleep_ms), sizes_(sizes), mutex_(mutex) {}

  void build(const Matrix<float>& X) override { inner_->build(X); }

  SearchResponse knn_search(const SearchRequest& request) const override {
    {
      std::lock_guard<std::mutex> lock(*mutex_);
      sizes_->push_back(request.queries->rows());
    }
    if (sleep_ms_ > 0)
      std::this_thread::sleep_for(std::chrono::milliseconds(sleep_ms_));
    return inner_->knn_search(request);
  }

  IndexInfo info() const override {
    IndexInfo info = inner_->info();
    info.backend = "slow-recording";
    return info;
  }

 private:
  std::unique_ptr<Index> inner_ = make_index("bruteforce");
  int sleep_ms_;
  std::vector<index_t>* sizes_;
  std::mutex* mutex_;
};

class ThrowingIndex final : public Index {
 public:
  void build(const Matrix<float>& X) override { inner_->build(X); }
  SearchResponse knn_search(const SearchRequest&) const override {
    throw std::runtime_error("backend exploded");
  }
  IndexInfo info() const override { return inner_->info(); }

 private:
  std::unique_ptr<Index> inner_ = make_index("bruteforce");
};

TEST(ServeConstruction, RejectsNullAndUnbuiltIndexes) {
  EXPECT_THROW(SearchService(nullptr), std::invalid_argument);
  EXPECT_THROW(SearchService(make_index("rbc-exact")), std::invalid_argument);
}

TEST(ServeConcurrency, ManySubmitterThreadsMatchGroundTruth) {
  const auto [X, Q] =
      testutil::split_rows(testutil::clustered_matrix(2'200, 10, 6, 30),
                           2'000);
  const index_t k = 4;
  const KnnResult reference = testutil::naive_knn(Q, X, k);

  SearchService service(built_index("rbc-exact", X),
                        {.max_batch = 64, .max_wait_us = 500, .workers = 2});

  constexpr int kThreads = 8;
  std::vector<std::string> failures(kThreads);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t)
    threads.emplace_back([&, t] {
      // Each thread submits every query singly and checks against the
      // serial reference (exact backend: identical ids and distances).
      std::vector<std::future<QueryResult>> futures;
      futures.reserve(Q.rows());
      for (index_t qi = 0; qi < Q.rows(); ++qi)
        futures.push_back(service.submit({Q.row(qi), Q.cols()}, k));
      for (index_t qi = 0; qi < Q.rows(); ++qi) {
        const QueryResult r = futures[qi].get();
        for (index_t j = 0; j < k; ++j)
          if (r.ids[j] != reference.ids.at(qi, j) ||
              r.dists[j] != reference.dists.at(qi, j)) {
            failures[static_cast<std::size_t>(t)] =
                "thread " + std::to_string(t) + " query " +
                std::to_string(qi) + " diverged";
            return;
          }
      }
    });
  for (auto& thread : threads) thread.join();
  for (const std::string& failure : failures) EXPECT_EQ(failure, "");

  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.submitted, static_cast<std::uint64_t>(kThreads) * Q.rows());
  EXPECT_EQ(stats.completed, stats.submitted);
  EXPECT_EQ(stats.failed, 0u);
  // 1600 concurrent singleton submissions must have coalesced.
  EXPECT_LT(stats.batches, stats.submitted);
  EXPECT_GT(stats.dist_evals, 0u);
}

TEST(ServeBatching, SubmitBatchMatchesGroundTruthAndMixedKCoalescesSafely) {
  const auto [X, Q] =
      testutil::split_rows(testutil::clustered_matrix(1'060, 8, 5, 31),
                           1'000);
  const KnnResult ref1 = testutil::naive_knn(Q, X, 1);
  const KnnResult ref3 = testutil::naive_knn(Q, X, 3);

  SearchService service(built_index("bruteforce", X),
                        {.max_batch = 32, .max_wait_us = 2'000, .workers = 2});

  // Interleave block submissions of different k: the dispatcher may only
  // coalesce same-k jobs, never mix them into one request.
  std::vector<std::future<KnnResult>> f1, f3;
  for (int round = 0; round < 10; ++round) {
    f1.push_back(service.submit_batch(Q, 1));
    f3.push_back(service.submit_batch(Q, 3));
  }
  for (auto& f : f1) EXPECT_TRUE(testutil::knn_equal(ref1, f.get()));
  for (auto& f : f3) EXPECT_TRUE(testutil::knn_equal(ref3, f.get()));
}

TEST(ServeBatching, RespectsMaxBatchAndCoalescesUnderBusyWorker) {
  const Matrix<float> X = testutil::clustered_matrix(300, 6, 4, 32);
  const Matrix<float> Q = testutil::random_matrix(33, 6, 33);

  std::vector<index_t> sizes;
  std::mutex mutex;
  auto slow =
      std::make_unique<SlowRecordingIndex>(/*sleep_ms=*/80, &sizes, &mutex);
  slow->build(X);
  SearchService service(
      std::move(slow),
      {.max_batch = 16, .max_wait_us = 20'000, .workers = 1});

  // First query dispatches alone (nothing else pending) and parks the only
  // worker in the backend for 80ms...
  auto first = service.submit({Q.row(0), Q.cols()}, 1);
  (void)first.get();
  // ...so these 32 all land in the queue together and must come out as
  // exactly two full max_batch-sized requests.
  std::vector<std::future<QueryResult>> futures;
  for (index_t qi = 1; qi < Q.rows(); ++qi)
    futures.push_back(service.submit({Q.row(qi), Q.cols()}, 1));
  for (auto& f : futures) (void)f.get();

  std::lock_guard<std::mutex> lock(mutex);
  index_t total = 0;
  for (index_t rows : sizes) {
    EXPECT_LE(rows, 16u) << "batch exceeded max_batch";
    total += rows;
  }
  EXPECT_EQ(total, Q.rows());
  ASSERT_EQ(sizes.size(), 3u);  // 1 (lone first) + 16 + 16
  EXPECT_EQ(sizes[0], 1u);

  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.batches, 3u);
  EXPECT_EQ(stats.batch_hist[0], 1u);  // the singleton
  EXPECT_EQ(stats.batch_hist[4], 2u);  // two 16-row batches
}

TEST(ServeBatching, OversizedBlockIsNeverSplit) {
  const Matrix<float> X = testutil::clustered_matrix(200, 5, 3, 34);
  const Matrix<float> Q = testutil::random_matrix(50, 5, 35);

  std::vector<index_t> sizes;
  std::mutex mutex;
  auto slow =
      std::make_unique<SlowRecordingIndex>(/*sleep_ms=*/0, &sizes, &mutex);
  slow->build(X);
  SearchService service(std::move(slow), {.max_batch = 8, .max_wait_us = 0, .workers = 1});

  EXPECT_TRUE(testutil::knn_equal(testutil::naive_knn(Q, X, 2),
                                  service.submit_batch(Q, 2).get()));
  std::lock_guard<std::mutex> lock(mutex);
  ASSERT_EQ(sizes.size(), 1u);
  EXPECT_EQ(sizes[0], Q.rows());
}

TEST(ServeErrors, MalformedSubmissionsThrowSynchronously) {
  const Matrix<float> X = testutil::random_matrix(40, 6, 36);
  const Matrix<float> wrong_dim = testutil::random_matrix(3, 4, 37);
  SearchService service(built_index("bruteforce", X));

  const std::vector<float> q(6, 0.0f);
  EXPECT_THROW((void)service.submit({q.data(), 4}, 1), std::invalid_argument);
  EXPECT_THROW((void)service.submit({q.data(), 6}, 0), std::invalid_argument);
  EXPECT_THROW((void)service.submit({q.data(), 6}, X.rows() + 1),
               std::invalid_argument);
  EXPECT_THROW((void)service.submit_batch(wrong_dim, 1),
               std::invalid_argument);
}

TEST(ServeErrors, BackendFailurePropagatesThroughTheFuture) {
  const Matrix<float> X = testutil::random_matrix(40, 6, 38);
  auto throwing = std::make_unique<ThrowingIndex>();
  throwing->build(X);
  SearchService service(std::move(throwing));

  const std::vector<float> q(6, 0.0f);
  auto future = service.submit({q.data(), 6}, 1);
  EXPECT_THROW((void)future.get(), std::runtime_error);
  service.drain();
  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.failed, 1u);
  EXPECT_EQ(stats.completed, 0u);
}

TEST(ServeShutdown, StopDrainsInFlightLoadAndRejectsLateSubmissions) {
  const Matrix<float> X = testutil::clustered_matrix(400, 7, 4, 39);
  const Matrix<float> Q = testutil::random_matrix(64, 7, 40);
  const KnnResult reference = testutil::naive_knn(Q, X, 2);

  std::vector<index_t> sizes;
  std::mutex mutex;
  auto slow =
      std::make_unique<SlowRecordingIndex>(/*sleep_ms=*/5, &sizes, &mutex);
  slow->build(X);
  SearchService service(std::move(slow), {.max_batch = 4, .max_wait_us = 1'000, .workers = 2});

  std::vector<std::future<QueryResult>> futures;
  for (index_t qi = 0; qi < Q.rows(); ++qi)
    futures.push_back(service.submit({Q.row(qi), Q.cols()}, 2));

  // Stop while most of those 16+ batches are still queued or in flight:
  // every accepted future must still complete, with correct answers.
  service.stop();
  for (index_t qi = 0; qi < Q.rows(); ++qi) {
    const QueryResult r = futures[qi].get();
    EXPECT_EQ(r.ids[0], reference.ids.at(qi, 0)) << "query " << qi;
  }
  EXPECT_EQ(service.stats().completed, static_cast<std::uint64_t>(Q.rows()));
  EXPECT_EQ(service.stats().queue_depth, 0u);

  const std::vector<float> q(7, 0.0f);
  EXPECT_THROW((void)service.submit({q.data(), 7}, 1), std::runtime_error);
  service.stop();  // idempotent
}

TEST(ServeShutdown, DrainWaitsForOutstandingWork) {
  const Matrix<float> X = testutil::clustered_matrix(400, 7, 4, 41);
  const Matrix<float> Q = testutil::random_matrix(32, 7, 42);

  std::vector<index_t> sizes;
  std::mutex mutex;
  auto slow =
      std::make_unique<SlowRecordingIndex>(/*sleep_ms=*/10, &sizes, &mutex);
  slow->build(X);
  SearchService service(std::move(slow), {.max_batch = 8, .max_wait_us = 500, .workers = 1});

  std::vector<std::future<QueryResult>> futures;
  for (index_t qi = 0; qi < Q.rows(); ++qi)
    futures.push_back(service.submit({Q.row(qi), Q.cols()}, 1));
  service.drain();

  // After drain, every future is immediately ready.
  for (auto& f : futures)
    EXPECT_EQ(f.wait_for(std::chrono::seconds(0)),
              std::future_status::ready);
  EXPECT_EQ(service.stats().queue_depth, 0u);
  EXPECT_EQ(service.stats().completed, static_cast<std::uint64_t>(Q.rows()));
}

TEST(ServeShutdown, SubmissionsRacingWithStopEitherCompleteOrFailCleanly) {
  // The network server's drain path calls drain() + stop() while client
  // connections may still be submitting. Hammer that race: every submission
  // must either complete with a correct-shaped answer or fail with the
  // clean "submit after stop()" error / kStopped admission — never an
  // assert, a lost future, or a hang.
  const Matrix<float> X = testutil::clustered_matrix(300, 6, 4, 57);
  Matrix<float> one_query = testutil::random_matrix(1, 6, 58);

  for (int round = 0; round < 8; ++round) {
    auto service = std::make_unique<SearchService>(
        built_index("bruteforce", X),
        ServiceOptions{.max_batch = 16, .max_wait_us = 50, .workers = 2});

    std::atomic<bool> go{false}, done{false};
    std::atomic<int> completed{0}, refused{0};
    std::vector<std::string> failures(4);
    std::vector<std::thread> submitters;
    for (int t = 0; t < 4; ++t)
      submitters.emplace_back([&, t] {
        while (!go.load()) std::this_thread::yield();
        while (!done.load()) {
          try {
            if (t % 2 == 0) {
              QueryResult r =
                  service->submit({one_query.row(0), 6}, 3).get();
              if (r.ids.size() != 3) failures[t] = "short result";
              completed.fetch_add(1);
            } else {
              std::future<KnnResult> f;
              const serve::Admission admission =
                  service->try_submit_batch(one_query, 3, f);
              if (admission == serve::Admission::kAccepted) {
                if (f.get().ids.cols() != 3) failures[t] = "short result";
                completed.fetch_add(1);
              } else {
                // kStopped (or kOverloaded) is the documented clean refusal.
                refused.fetch_add(1);
                if (admission == serve::Admission::kStopped) return;
              }
            }
          } catch (const std::runtime_error& e) {
            // The documented late-submission error; anything else is a bug.
            if (std::string(e.what()).find("submit after stop()") ==
                std::string::npos)
              failures[t] = e.what();
            return;
          }
        }
      });

    go.store(true);
    std::this_thread::sleep_for(std::chrono::milliseconds(2 + round));
    service->drain();
    service->stop();
    done.store(true);
    for (std::thread& t : submitters) t.join();
    for (const std::string& f : failures) EXPECT_EQ(f, "");
    service.reset();  // destructor after stop(): also clean
  }
}

TEST(ServeAdmission, TrySubmitRejectsOverloadWithoutBlocking) {
  const Matrix<float> X = testutil::clustered_matrix(200, 6, 4, 61);
  std::vector<index_t> sizes;
  std::mutex mutex;
  auto slow =
      std::make_unique<SlowRecordingIndex>(/*sleep_ms=*/100, &sizes, &mutex);
  slow->build(X);
  SearchService service(
      std::move(slow),
      {.max_batch = 1, .max_wait_us = 0, .workers = 1, .max_queue = 1});

  Matrix<float> q = testutil::random_matrix(1, 6, 62);
  std::future<KnnResult> first;
  ASSERT_EQ(service.try_submit_batch(q, 2, first),
            serve::Admission::kAccepted);

  // The slot is taken: the non-blocking path answers kOverloaded im-
  // mediately (well under the 100ms the in-flight search needs).
  std::future<KnnResult> second;
  const auto t0 = std::chrono::steady_clock::now();
  EXPECT_EQ(service.try_submit_batch(q, 2, second),
            serve::Admission::kOverloaded);
  EXPECT_LT(std::chrono::steady_clock::now() - t0,
            std::chrono::milliseconds(90));
  EXPECT_FALSE(second.valid());

  EXPECT_EQ(first.get().ids.rows(), 1u);
  EXPECT_EQ(service.stats().rejected, 1u);
  EXPECT_EQ(service.stats().completed, 1u);

  // Admission reopens once the queue drains; after stop() it's kStopped.
  service.drain();
  std::future<KnnResult> third;
  EXPECT_EQ(service.try_submit_batch(q, 2, third),
            serve::Admission::kAccepted);
  EXPECT_EQ(third.get().ids.rows(), 1u);
  service.stop();
  std::future<KnnResult> after;
  EXPECT_EQ(service.try_submit_batch(q, 2, after),
            serve::Admission::kStopped);
}

TEST(ServeStats, SnapshotReportsLatencyAndThroughput) {
  const auto [X, Q] =
      testutil::split_rows(testutil::clustered_matrix(1'032, 8, 5, 43),
                           1'000);
  SearchService service(built_index("rbc-exact", X),
                        {.max_batch = 128, .max_wait_us = 200});

  for (int round = 0; round < 4; ++round)
    (void)service.submit_batch(Q, 3).get();

  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.completed, 4u * Q.rows());
  EXPECT_GT(stats.latency_p50_ms, 0.0);
  EXPECT_GE(stats.latency_p99_ms, stats.latency_p50_ms);
  EXPECT_GE(stats.latency_max_ms, stats.latency_p99_ms);
  EXPECT_GT(stats.throughput_qps, 0.0);
  EXPECT_GT(stats.wall_seconds, 0.0);
  EXPECT_GT(stats.mean_batch(), 1.0);
  EXPECT_GE(stats.max_queue_depth, Q.rows());
}

}  // namespace
}  // namespace rbc
