// ShardedIndex internals the conformance suite doesn't reach: the
// partition math, k clamping when shards are smaller than k, range-search
// fan-out, IndexInfo aggregation, shard-parameter validation, and the
// generic "sharded:<inner>" factory fallback for user-registered backends.
#include <gtest/gtest.h>

#include <numeric>
#include <sstream>

#include "api/api.hpp"
#include "rbc/serialize_io.hpp"
#include "shard/sharded_index.hpp"
#include "test_util.hpp"

namespace rbc {
namespace {

TEST(ShardPartition, ContiguousCoversEveryRowOnceInOrder) {
  for (index_t n : {0u, 1u, 5u, 7u, 100u}) {
    for (index_t shards : {1u, 2u, 7u, 13u}) {
      const auto rows =
          shard::partition_rows(n, shards, shard::Partition::kContiguous);
      ASSERT_EQ(rows.size(), shards);
      std::vector<index_t> flat;
      for (const auto& set : rows)
        flat.insert(flat.end(), set.begin(), set.end());
      std::vector<index_t> expected(n);
      std::iota(expected.begin(), expected.end(), 0u);
      EXPECT_EQ(flat, expected) << "n=" << n << " shards=" << shards;
      // Balance: contiguous shard sizes differ by at most one row.
      std::size_t lo = n, hi = 0;
      for (const auto& set : rows) {
        lo = std::min(lo, set.size());
        hi = std::max(hi, set.size());
      }
      EXPECT_LE(hi - lo, 1u);
    }
  }
}

TEST(ShardPartition, StridedAssignsRowIModShards) {
  const auto rows =
      shard::partition_rows(10, 3, shard::Partition::kStrided);
  EXPECT_EQ(rows[0], (std::vector<index_t>{0, 3, 6, 9}));
  EXPECT_EQ(rows[1], (std::vector<index_t>{1, 4, 7}));
  EXPECT_EQ(rows[2], (std::vector<index_t>{2, 5, 8}));
}

TEST(ShardedIndex, KLargerThanEveryShardClampsAndMergesExactly) {
  // 10 points over 7 shards: every shard holds 1-2 rows, so k = 8 forces
  // the per-shard clamp on every shard and the merge must still equal the
  // unsharded answer including ties.
  const Matrix<float> X =
      testutil::with_duplicates(testutil::random_matrix(6, 4, 1), 4);
  const Matrix<float> Q = testutil::random_matrix(9, 4, 2);
  const index_t k = 8;
  const KnnResult reference = testutil::naive_knn(Q, X, k);

  for (const char* partition : {"contiguous", "strided"}) {
    auto index = make_index("sharded:bruteforce",
                            {.num_shards = 7, .partition = partition});
    index->build(X);
    EXPECT_EQ(index->info().shards, 7u);
    const KnnResult result = index->knn_search({.queries = &Q, .k = k}).knn;
    EXPECT_TRUE(testutil::knn_equal(reference, result)) << partition;
  }
}

TEST(ShardedIndex, MoreShardsThanRowsLeavesExcessShardsUnbuilt) {
  const Matrix<float> X = testutil::random_matrix(3, 4, 3);
  const Matrix<float> Q = testutil::random_matrix(4, 4, 4);
  auto index = make_index("sharded:bruteforce", {.num_shards = 8});
  index->build(X);
  EXPECT_EQ(index->info().shards, 3u);
  EXPECT_EQ(index->info().size, 3u);
  EXPECT_TRUE(testutil::knn_equal(
      testutil::naive_knn(Q, X, 3),
      index->knn_search({.queries = &Q, .k = 3}).knn));
}

TEST(ShardedIndex, RangeSearchUnionsShardsAndRemapsIds) {
  const Matrix<float> X = testutil::clustered_matrix(400, 6, 5, 5);
  const Matrix<float> Q = testutil::random_matrix(12, 6, 6, -6.0f, 6.0f);
  const dist_t radius = 2.5f;

  for (const char* partition : {"contiguous", "strided"}) {
    auto index = make_index("sharded:rbc-exact",
                            {.num_shards = 5, .partition = partition});
    index->build(X);
    ASSERT_TRUE(index->info().supports_range);
    const RangeResponse response =
        index->range_search({.queries = &Q, .radius = radius});
    ASSERT_EQ(response.ids.size(), Q.rows());
    for (index_t qi = 0; qi < Q.rows(); ++qi)
      EXPECT_EQ(response.ids[qi], testutil::naive_range(Q.row(qi), X, radius))
          << partition << " query " << qi;
  }
}

TEST(ShardedIndex, RangeSearchOverTreeInnerThrowsUnsupported) {
  const Matrix<float> X = testutil::random_matrix(30, 5, 7);
  const Matrix<float> Q = testutil::random_matrix(3, 5, 8);
  auto index = make_index("sharded:kdtree", {.num_shards = 2});
  index->build(X);
  EXPECT_FALSE(index->info().supports_range);
  EXPECT_THROW((void)index->range_search({.queries = &Q, .radius = 1.0f}),
               std::runtime_error);
}

TEST(ShardedIndex, InfoAggregatesOverShards) {
  const Matrix<float> X = testutil::clustered_matrix(300, 8, 4, 9);
  auto index = make_index("sharded:rbc-exact", {.num_shards = 4});
  index->build(X);
  const IndexInfo info = index->info();
  EXPECT_EQ(info.backend, "sharded:rbc-exact");
  EXPECT_EQ(info.size, 300u);
  EXPECT_EQ(info.dim, 8u);
  EXPECT_EQ(info.shards, 4u);
  EXPECT_TRUE(info.exact);
  EXPECT_TRUE(info.supports_save);
  // Memory aggregates the inner indices plus the id-remap tables; each
  // shard owns a copy of its rows, so the total at least covers the data.
  EXPECT_GE(info.memory_bytes, 300u * 8u * sizeof(float));

  // Search stats aggregate across shards but count each query once.
  const Matrix<float> Q = testutil::random_matrix(10, 8, 10);
  SearchRequest request{.queries = &Q, .k = 3};
  request.options.collect_stats = true;
  const SearchResponse response = index->knn_search(request);
  EXPECT_EQ(response.stats.queries, Q.rows());
  EXPECT_GT(response.stats.dist_evals(), 0u);
}

TEST(ShardedIndex, SaveLoadRoundTripsThroughAFile) {
  const Matrix<float> X = testutil::clustered_matrix(250, 7, 4, 11);
  const Matrix<float> Q = testutil::random_matrix(15, 7, 12);
  auto index = make_index("sharded:rbc-exact",
                          {.num_shards = 3, .partition = "strided"});
  index->build(X);
  const KnnResult before = index->knn_search({.queries = &Q, .k = 4}).knn;

  std::stringstream stream;
  index->save(stream);
  const auto restored = load_index(stream);
  ASSERT_NE(restored, nullptr);
  EXPECT_EQ(restored->info().backend, "sharded:rbc-exact");
  EXPECT_EQ(restored->info().shards, 3u);
  const KnnResult after = restored->knn_search({.queries = &Q, .k = 4}).knn;
  EXPECT_TRUE(testutil::knn_equal(before, after));
}

TEST(ShardedIndex, InvalidShardParametersThrowAtMakeTime) {
  EXPECT_THROW((void)make_index("sharded:rbc-exact", {.num_shards = 0}),
               std::invalid_argument);
  EXPECT_THROW(
      (void)make_index("sharded:rbc-exact", {.partition = "hashed"}),
      std::invalid_argument);
  EXPECT_THROW((void)make_index("sharded:no-such-backend"),
               std::invalid_argument);
}

TEST(ShardedIndex, UserRegisteredBackendsShardThroughTheGenericFallback) {
  // A backend registered outside the shipped set gets a sharded composite
  // without any extra registration: make_index resolves the "sharded:"
  // prefix generically.
  register_backend({.name = "conformance-dummy-bf",
                    .create = [](const IndexOptions&) {
                      return make_index("bruteforce");
                    },
                    .magic = 0,
                    .load = nullptr});
  const Matrix<float> X = testutil::random_matrix(60, 5, 13);
  const Matrix<float> Q = testutil::random_matrix(8, 5, 14);
  auto index = make_index("sharded:conformance-dummy-bf", {.num_shards = 4});
  index->build(X);
  EXPECT_TRUE(testutil::knn_equal(
      testutil::naive_knn(Q, X, 2),
      index->knn_search({.queries = &Q, .k = 2}).knn));
}

TEST(ShardedIndex, ShardedMagicCannotBeClaimedByARegistration) {
  EXPECT_FALSE(register_backend(
      {.name = "magic-squatter",
       .create = [](const IndexOptions&) { return make_index("bruteforce"); },
       .magic = io::kMagicSharded,
       .load = nullptr}));
}

}  // namespace
}  // namespace rbc
