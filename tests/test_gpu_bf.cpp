// The device brute-force kernel must agree exactly with the host brute-force
// primitive — same (distance, id) contract, so bit-equality is required.
#include <gtest/gtest.h>

#include <tuple>

#include "gpu/gpu_bf.hpp"
#include "test_util.hpp"

namespace rbc::gpu {
namespace {

class GpuBfShape
    : public ::testing::TestWithParam<std::tuple<index_t, index_t, index_t,
                                                 std::uint32_t>> {};

TEST_P(GpuBfShape, MatchesHostBruteForce) {
  const auto [n, d, k, tpb] = GetParam();
  const Matrix<float> X = testutil::clustered_matrix(n, d, 4, n + d);
  const Matrix<float> Q = testutil::random_matrix(19, d, n, -6.0f, 6.0f);

  simt::Device device(2);
  const GpuMatrix gq = upload_matrix(device, Q);
  const GpuMatrix gx = upload_matrix(device, X);
  const KnnResult gpu_result = gpu_bf_knn(device, gq, gx, k, tpb);
  const KnnResult host_result = testutil::naive_knn(Q, X, k);
  EXPECT_TRUE(testutil::knn_equal(host_result, gpu_result));
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, GpuBfShape,
    ::testing::Combine(::testing::Values<index_t>(3, 100, 1'000),
                       ::testing::Values<index_t>(4, 21, 74),
                       ::testing::Values<index_t>(1, 5),
                       ::testing::Values<std::uint32_t>(1, 4, 64)),
    [](const auto& info) {
      return "n" + std::to_string(std::get<0>(info.param)) + "_d" +
             std::to_string(std::get<1>(info.param)) + "_k" +
             std::to_string(std::get<2>(info.param)) + "_t" +
             std::to_string(std::get<3>(info.param));
    });

TEST(GpuBf, DuplicateHeavyDataMatchesTies) {
  const Matrix<float> base = testutil::random_matrix(50, 8, 1);
  const Matrix<float> X = testutil::with_duplicates(base, 100);
  const Matrix<float> Q = testutil::random_matrix(11, 8, 2);
  simt::Device device(2);
  const GpuMatrix gq = upload_matrix(device, Q);
  const GpuMatrix gx = upload_matrix(device, X);
  EXPECT_TRUE(testutil::knn_equal(testutil::naive_knn(Q, X, 6),
                                  gpu_bf_knn(device, gq, gx, 6)));
}

TEST(GpuBf, KLargerThanDatabasePads) {
  const Matrix<float> X = testutil::random_matrix(4, 5, 3);
  const Matrix<float> Q = testutil::random_matrix(2, 5, 4);
  simt::Device device(1);
  const GpuMatrix gq = upload_matrix(device, Q);
  const GpuMatrix gx = upload_matrix(device, X);
  const KnnResult r = gpu_bf_knn(device, gq, gx, 8);
  for (index_t qi = 0; qi < 2; ++qi) {
    for (index_t j = 0; j < 4; ++j) EXPECT_NE(r.ids.at(qi, j), kInvalidIndex);
    for (index_t j = 4; j < 8; ++j) EXPECT_EQ(r.ids.at(qi, j), kInvalidIndex);
  }
}

TEST(GpuBf, TransfersAreMetered) {
  const Matrix<float> X = testutil::random_matrix(256, 16, 5);
  const Matrix<float> Q = testutil::random_matrix(32, 16, 6);
  simt::Device device(2);
  device.reset_stats();
  const GpuMatrix gq = upload_matrix(device, Q);
  const GpuMatrix gx = upload_matrix(device, X);
  const std::uint64_t upload_bytes = device.stats().bytes_h2d;
  EXPECT_EQ(upload_bytes,
            (static_cast<std::uint64_t>(X.rows()) * X.stride() +
             static_cast<std::uint64_t>(Q.rows()) * Q.stride()) *
                sizeof(float));
  gpu_bf_knn(device, gq, gx, 3);
  EXPECT_GT(device.stats().bytes_d2h, 0u);
  EXPECT_EQ(device.stats().kernels_launched, 1u);
  EXPECT_EQ(device.stats().blocks_executed, 32u);  // one block per query
}

TEST(GpuBf, ResultIndependentOfThreadsPerBlock) {
  const Matrix<float> X = testutil::clustered_matrix(700, 12, 5, 7);
  const Matrix<float> Q = testutil::random_matrix(9, 12, 8, -6.0f, 6.0f);
  simt::Device device(2);
  const GpuMatrix gq = upload_matrix(device, Q);
  const GpuMatrix gx = upload_matrix(device, X);
  const KnnResult a = gpu_bf_knn(device, gq, gx, 4, 2);
  const KnnResult b = gpu_bf_knn(device, gq, gx, 4, 128);
  EXPECT_TRUE(testutil::knn_equal(a, b));
}

}  // namespace
}  // namespace rbc::gpu
