#include <gtest/gtest.h>

#include <limits>

#include "common/rng.hpp"
#include "distance/graph_metric.hpp"

namespace rbc {
namespace {

TEST(GraphSpace, PathGraphDistances) {
  // 0 - 1 - 2 - 3 with unit weights: d(i, j) = |i - j|.
  GraphSpace g(4);
  g.add_edge(0, 1, 1.0f);
  g.add_edge(1, 2, 1.0f);
  g.add_edge(2, 3, 1.0f);
  g.finalize();
  EXPECT_TRUE(g.connected());
  for (index_t i = 0; i < 4; ++i)
    for (index_t j = 0; j < 4; ++j)
      EXPECT_DOUBLE_EQ(g.distance(i, j), std::abs(int(i) - int(j)));
}

TEST(GraphSpace, WeightedShortcut) {
  // Triangle where the direct edge is longer than the detour.
  GraphSpace g(3);
  g.add_edge(0, 1, 1.0f);
  g.add_edge(1, 2, 1.0f);
  g.add_edge(0, 2, 5.0f);
  g.finalize();
  EXPECT_DOUBLE_EQ(g.distance(0, 2), 2.0);  // via node 1
}

TEST(GraphSpace, DisconnectedComponentsAreInfinite) {
  GraphSpace g(4);
  g.add_edge(0, 1, 1.0f);
  g.add_edge(2, 3, 1.0f);
  g.finalize();
  EXPECT_FALSE(g.connected());
  EXPECT_TRUE(std::isinf(g.distance(0, 2)));
  EXPECT_DOUBLE_EQ(g.distance(0, 1), 1.0);
  EXPECT_DOUBLE_EQ(g.distance(2, 3), 1.0);
}

TEST(GraphSpace, MetricAxiomsOnRandomConnectedGraph) {
  const index_t n = 40;
  GraphSpace g(n);
  Rng rng(5);
  // Ring for connectivity plus random chords.
  for (index_t i = 0; i < n; ++i)
    g.add_edge(i, (i + 1) % n, rng.uniform_float(0.5f, 2.0f));
  for (int e = 0; e < 60; ++e) {
    const index_t u = rng.uniform_index(n), v = rng.uniform_index(n);
    if (u != v) g.add_edge(u, v, rng.uniform_float(0.5f, 3.0f));
  }
  g.finalize();
  ASSERT_TRUE(g.connected());
  for (index_t i = 0; i < n; ++i) {
    EXPECT_DOUBLE_EQ(g.distance(i, i), 0.0);
    for (index_t j = 0; j < n; ++j) {
      EXPECT_DOUBLE_EQ(g.distance(i, j), g.distance(j, i));
      for (index_t k = 0; k < n; k += 7)
        EXPECT_LE(g.distance(i, j),
                  g.distance(i, k) + g.distance(k, j) + 1e-9);
    }
  }
}

TEST(GraphSpace, SingleNode) {
  GraphSpace g(1);
  g.finalize();
  EXPECT_TRUE(g.connected());
  EXPECT_DOUBLE_EQ(g.distance(0, 0), 0.0);
}

}  // namespace
}  // namespace rbc
