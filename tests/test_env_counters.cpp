#include <gtest/gtest.h>

#include <cstdlib>

#include "common/counters.hpp"
#include "common/env.hpp"
#include "parallel/parallel_for.hpp"

namespace rbc {
namespace {

TEST(Env, IntegerParsingAndFallback) {
  ::setenv("RBC_TEST_INT", "42", 1);
  EXPECT_EQ(env_or("RBC_TEST_INT", std::int64_t{7}), 42);
  ::unsetenv("RBC_TEST_INT");
  EXPECT_EQ(env_or("RBC_TEST_INT", std::int64_t{7}), 7);
  ::setenv("RBC_TEST_INT", "not_a_number", 1);
  EXPECT_EQ(env_or("RBC_TEST_INT", std::int64_t{7}), 7);
  ::unsetenv("RBC_TEST_INT");
}

TEST(Env, TrailingGarbageFallsBackInsteadOfTruncating) {
  // strtoll stops at the first bad character, so "2x" used to configure 2 —
  // a typo silently taking effect with the wrong value. It must fall back.
  ::setenv("RBC_TEST_INT", "2x", 1);
  EXPECT_EQ(env_or("RBC_TEST_INT", std::int64_t{7}), 7);
  ::setenv("RBC_TEST_INT", "12 ", 1);
  EXPECT_EQ(env_or("RBC_TEST_INT", std::int64_t{7}), 7);
  // Negative values themselves stay valid (no trailing chars).
  ::setenv("RBC_TEST_INT", "-3", 1);
  EXPECT_EQ(env_or("RBC_TEST_INT", std::int64_t{7}), -3);
  ::unsetenv("RBC_TEST_INT");
}

TEST(Env, OutOfRangeValuesFallBack) {
  // Magnitudes strtoll/strtod clamp (ERANGE) are misconfigurations, not
  // values: 99999999999999999999 must not quietly become INT64_MAX.
  ::setenv("RBC_TEST_INT", "99999999999999999999", 1);
  EXPECT_EQ(env_or("RBC_TEST_INT", std::int64_t{7}), 7);
  ::setenv("RBC_TEST_INT", "-99999999999999999999", 1);
  EXPECT_EQ(env_or("RBC_TEST_INT", std::int64_t{7}), 7);
  ::unsetenv("RBC_TEST_INT");
  ::setenv("RBC_TEST_DBL", "1e999", 1);
  EXPECT_DOUBLE_EQ(env_or("RBC_TEST_DBL", 1.5), 1.5);
  ::unsetenv("RBC_TEST_DBL");
}

TEST(Env, DoubleParsing) {
  ::setenv("RBC_TEST_DBL", "2.5", 1);
  EXPECT_DOUBLE_EQ(env_or("RBC_TEST_DBL", 1.0), 2.5);
  ::unsetenv("RBC_TEST_DBL");
  EXPECT_DOUBLE_EQ(env_or("RBC_TEST_DBL", 1.0), 1.0);
  ::setenv("RBC_TEST_DBL", "2.5 qps", 1);
  EXPECT_DOUBLE_EQ(env_or("RBC_TEST_DBL", 1.0), 1.0);
  ::unsetenv("RBC_TEST_DBL");
}

TEST(Env, StringFallback) {
  ::setenv("RBC_TEST_STR", "hello", 1);
  EXPECT_EQ(env_or("RBC_TEST_STR", std::string("x")), "hello");
  ::unsetenv("RBC_TEST_STR");
  EXPECT_EQ(env_or("RBC_TEST_STR", std::string("x")), "x");
}

TEST(Counters, SingleThreadAccumulation) {
  counters::reset();
  counters::add_dist_evals(10);
  counters::add_dist_evals(5);
  EXPECT_EQ(counters::total_dist_evals(), 15u);
  counters::reset();
  EXPECT_EQ(counters::total_dist_evals(), 0u);
}

TEST(Counters, SumsAcrossThreads) {
  counters::reset();
  parallel_for(0, 1000, [](index_t) { counters::add_dist_evals(3); });
  EXPECT_EQ(counters::total_dist_evals(), 3000u);
}

TEST(Counters, ScopeDelta) {
  counters::reset();
  counters::add_dist_evals(100);
  counters::Scope scope;
  counters::add_dist_evals(42);
  EXPECT_EQ(scope.delta(), 42u);
  counters::add_dist_evals(8);
  EXPECT_EQ(scope.delta(), 50u);
}

TEST(Counters, NestedScopes) {
  counters::reset();
  counters::Scope outer;
  counters::add_dist_evals(5);
  counters::Scope inner;
  counters::add_dist_evals(7);
  EXPECT_EQ(inner.delta(), 7u);
  EXPECT_EQ(outer.delta(), 12u);
}

}  // namespace
}  // namespace rbc
