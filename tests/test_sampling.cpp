#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "rbc/sampling.hpp"

namespace rbc {
namespace {

TEST(Sampling, WithoutReplacementBasicContract) {
  Rng rng(1);
  for (const auto [n, count] :
       {std::pair<index_t, index_t>{100, 10}, {100, 100}, {50, 1},
        {1'000, 999}}) {
    Rng local = rng.split(n * 1000 + count);
    const auto sample = sample_without_replacement(n, count, local);
    EXPECT_EQ(sample.size(), count);
    EXPECT_TRUE(std::is_sorted(sample.begin(), sample.end()));
    std::set<index_t> unique(sample.begin(), sample.end());
    EXPECT_EQ(unique.size(), count) << "duplicates in sample";
    for (const index_t id : sample) EXPECT_LT(id, n);
  }
}

TEST(Sampling, WithoutReplacementCountClamped) {
  Rng rng(2);
  const auto sample = sample_without_replacement(10, 50, rng);
  EXPECT_EQ(sample.size(), 10u);  // clamped to n
}

TEST(Sampling, WithoutReplacementIsUniform) {
  // Chi-square-flavored check: each element of [0, 20) should be chosen
  // about trials * count / n times.
  const index_t n = 20, count = 5;
  const int trials = 20'000;
  std::vector<int> hits(n, 0);
  Rng rng(3);
  for (int t = 0; t < trials; ++t) {
    const auto sample = sample_without_replacement(n, count, rng);
    for (const index_t id : sample) ++hits[id];
  }
  const double expected = static_cast<double>(trials) * count / n;  // 5000
  for (index_t i = 0; i < n; ++i)
    EXPECT_NEAR(hits[i], expected, 0.06 * expected) << "element " << i;
}

TEST(Sampling, BernoulliExpectationAndOrder) {
  Rng rng(4);
  const index_t n = 50'000;
  const double p = 0.02;
  const auto sample = sample_bernoulli(n, p, rng);
  EXPECT_TRUE(std::is_sorted(sample.begin(), sample.end()));
  EXPECT_NEAR(static_cast<double>(sample.size()), p * n, 5 * std::sqrt(p * n));
}

TEST(Sampling, ChooseRepresentativesNeverEmpty) {
  for (const auto sampling : {Sampling::kExactCount, Sampling::kBernoulli}) {
    RbcParams params;
    params.num_reps = 1;
    params.sampling = sampling;
    for (std::uint64_t seed = 0; seed < 50; ++seed) {
      params.seed = seed;
      const auto reps = choose_representatives(10, params);
      EXPECT_GE(reps.size(), 1u);
      for (const index_t r : reps) EXPECT_LT(r, 10u);
    }
  }
}

TEST(Sampling, ChooseRepresentativesDeterministicInSeed) {
  RbcParams params;
  params.num_reps = 25;
  params.seed = 99;
  EXPECT_EQ(choose_representatives(1'000, params),
            choose_representatives(1'000, params));
  params.seed = 100;
  const auto other = choose_representatives(1'000, params);
  RbcParams original;
  original.num_reps = 25;
  original.seed = 99;
  EXPECT_NE(choose_representatives(1'000, original), other);
}

TEST(ParamsResolve, NumRepsDefaultsToCeilSqrtN) {
  RbcParams params;
  EXPECT_EQ(params.resolve_num_reps(0), 0u);
  EXPECT_EQ(params.resolve_num_reps(1), 1u);
  EXPECT_EQ(params.resolve_num_reps(100), 10u);
  EXPECT_EQ(params.resolve_num_reps(101), 11u);  // ceil
  params.num_reps = 5'000;
  EXPECT_EQ(params.resolve_num_reps(100), 100u);  // clamped to n
}

TEST(ParamsResolve, PointsPerRepDefaultsToNumReps) {
  RbcParams params;
  EXPECT_EQ(params.resolve_points_per_rep(400), 20u);
  params.num_reps = 37;
  EXPECT_EQ(params.resolve_points_per_rep(400), 37u);
  params.points_per_rep = 9;
  EXPECT_EQ(params.resolve_points_per_rep(400), 9u);
}

TEST(ParamsResolve, OneShotTheoryFormula) {
  // nr = s = c sqrt(n ln(1/delta)).
  EXPECT_EQ(oneshot_theory_params(0, 2.0, 0.1), 0u);
  const index_t v = oneshot_theory_params(10'000, 2.0, 0.1);
  const double expected = 2.0 * std::sqrt(10'000 * std::log(10.0));
  EXPECT_NEAR(static_cast<double>(v), expected, 1.0);
  // Clamped to n.
  EXPECT_EQ(oneshot_theory_params(10, 100.0, 0.001), 10u);
}

}  // namespace
}  // namespace rbc
