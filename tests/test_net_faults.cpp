// Chaos suite for the fault-tolerant distributed serving path: NetRouter
// over real shard-owner RbcServer processes, with faults injected by the
// deterministic FaultProxy (tests/fault_proxy.hpp) and by killing/restarting
// the processes themselves.
//
// The invariants under test, per docs/ARCHITECTURE.md "Fault tolerance":
//   * replica failover — killing any single replica mid-load loses zero
//     queries, and every answer stays bit-identical to the in-process
//     sharded:<inner> reference;
//   * crash + restart — a restarted shard (fronted by the proxy's stable
//     port) is re-validated and serves again, closing the breaker;
//   * deadlines — a slow shard is abandoned when the budget expires;
//   * graceful degradation — with allow_partial, a dead/partitioned shard
//     yields coverage flags, never an exception, and the merged answer is
//     exact over the covered shards;
//   * transport abuse — mid-frame truncation and byte corruption are
//     survivable transport failures, not crashes or wrong answers.
#include <gtest/gtest.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "api/api.hpp"
#include "dist/net_router.hpp"
#include "fault_proxy.hpp"
#include "serve/net/server.hpp"
#include "shard/merge.hpp"
#include "test_util.hpp"

namespace rbc {
namespace {

constexpr index_t kDim = 8;
constexpr index_t kRows = 400;

/// Deterministic database shared bit-for-bit between this process and the
/// shard workers (same generator, same seed).
Matrix<float> test_database() {
  return testutil::clustered_matrix(kRows, kDim, 4, 123);
}

Matrix<float> test_queries(index_t nq = 16) {
  return testutil::clustered_matrix(nq, kDim, 4, 321);
}

IndexOptions shard_options(index_t num_shards) {
  IndexOptions options;
  options.rbc.seed = 7;
  options.num_shards = num_shards;
  return options;
}

void expect_same_knn(const KnnResult& a, const KnnResult& b,
                     const char* where) {
  ASSERT_EQ(a.ids.rows(), b.ids.rows()) << where;
  ASSERT_EQ(a.ids.cols(), b.ids.cols()) << where;
  for (index_t i = 0; i < a.ids.rows(); ++i)
    for (index_t j = 0; j < a.ids.cols(); ++j) {
      ASSERT_EQ(a.ids.at(i, j), b.ids.at(i, j))
          << where << ": query " << i << " slot " << j;
      ASSERT_EQ(a.dists.at(i, j), b.dists.at(i, j))
          << where << ": query " << i << " slot " << j;
    }
}

// ------------------------------------------------------ worker management --

/// One shard-owner process. Replicas of a shard are just two workers with
/// the same (shard, num_shards) arguments: the build is deterministic, so
/// they hold identical indexes.
struct Worker {
  pid_t pid = -1;
  std::string port_file;
  std::uint16_t port = 0;
};

std::uint16_t wait_for_port_file(const std::string& path) {
  for (int attempt = 0; attempt < 300; ++attempt) {
    std::ifstream is(path);
    int port = 0;
    if (is >> port && port > 0) return static_cast<std::uint16_t>(port);
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }
  return 0;
}

Worker spawn_worker(index_t shard, index_t num_shards,
                    const std::string& tag) {
  Worker w;
  w.port_file = ::testing::TempDir() + "fault_shard_" +
                std::to_string(getpid()) + "_" + tag + ".port";
  std::remove(w.port_file.c_str());
  const pid_t pid = fork();
  if (pid == 0) {
    const std::string s = std::to_string(shard);
    const std::string ns = std::to_string(num_shards);
    execl("/proc/self/exe", "/proc/self/exe", "--fault-shard-worker",
          s.c_str(), ns.c_str(), w.port_file.c_str(),
          static_cast<char*>(nullptr));
    _exit(127);
  }
  w.pid = pid;
  w.port = wait_for_port_file(w.port_file);
  return w;
}

void kill_worker(Worker& w, int sig = SIGKILL) {
  if (w.pid <= 0) return;
  kill(w.pid, sig);
  int status = 0;
  waitpid(w.pid, &status, 0);
  w.pid = -1;
  std::remove(w.port_file.c_str());
}

struct WorkerGuard {
  std::vector<Worker*> workers;
  ~WorkerGuard() {
    for (Worker* w : workers) kill_worker(*w);
  }
};

/// Fast-failing router options for tests: small breaker windows so a run
/// spends milliseconds, not seconds, in backoff.
dist::RouterOptions fast_options() {
  dist::RouterOptions options;
  options.breaker_failures = 2;
  options.breaker_base_ms = 5;
  options.breaker_max_ms = 50;
  options.max_failovers = 6;
  options.client.timeout_ms = 2'000;
  return options;
}

/// The in-process reference everything must be bit-identical to.
std::unique_ptr<Index> reference_index(index_t num_shards) {
  auto index = make_index("sharded:rbc-exact", shard_options(num_shards));
  index->build(test_database());
  return index;
}

/// Expected answer when only `covered` shards contribute: the same
/// merge_shard_topk the router runs, fed from locally built per-shard
/// indexes (identical to what the workers hold).
KnnResult expected_partial_knn(const Matrix<float>& queries, index_t k,
                               index_t num_shards,
                               const std::vector<bool>& covered) {
  const Matrix<float> database = test_database();
  const auto assignment = shard::partition_rows(
      database.rows(), num_shards, shard::Partition::kContiguous);
  std::vector<KnnResult> per_shard;
  std::vector<index_t> ks;
  std::vector<const std::vector<index_t>*> maps;
  for (index_t s = 0; s < num_shards; ++s) {
    if (!covered[s]) continue;
    const std::vector<index_t>& mine = assignment[s];
    Matrix<float> rows(static_cast<index_t>(mine.size()), database.cols());
    for (index_t i = 0; i < rows.rows(); ++i)
      rows.copy_row_from(database, mine[i], i);
    auto index = make_index("rbc-exact", shard_options(num_shards));
    index->build(rows);
    const index_t shard_k = std::min<index_t>(k, rows.rows());
    SearchRequest request{.queries = &queries, .k = shard_k, .options = {}};
    per_shard.push_back(index->knn_search(request).knn);
    ks.push_back(shard_k);
    maps.push_back(&assignment[s]);
  }
  std::vector<shard::MergeInput> inputs;
  for (std::size_t i = 0; i < per_shard.size(); ++i)
    inputs.push_back({&per_shard[i], ks[i], maps[i]});
  return shard::merge_shard_topk(queries.rows(), k, inputs);
}

// ------------------------------------------------------------------ tests --

TEST(NetFaults, KillingAnyReplicaMidLoadLosesZeroQueries) {
  constexpr index_t kShards = 2;
  Worker s0a = spawn_worker(0, kShards, "k0a");
  Worker s0b = spawn_worker(0, kShards, "k0b");
  Worker s1a = spawn_worker(1, kShards, "k1a");
  Worker s1b = spawn_worker(1, kShards, "k1b");
  WorkerGuard guard{{&s0a, &s0b, &s1a, &s1b}};
  for (const Worker* w : guard.workers) ASSERT_NE(w->port, 0);

  const std::vector<std::vector<dist::Endpoint>> topology = {
      {{"127.0.0.1", s0a.port}, {"127.0.0.1", s0b.port}},
      {{"127.0.0.1", s1a.port}, {"127.0.0.1", s1b.port}}};
  dist::NetRouter router(topology, fast_options());

  const auto reference = reference_index(kShards);
  const Matrix<float> queries = test_queries();
  const index_t k = 10;
  SearchRequest request{.queries = &queries, .k = k, .options = {}};
  const SearchResponse expected = reference->knn_search(request);

  // 30 query blocks; the preferred replica of each shard is murdered
  // mid-run (SIGKILL: no drain, no goodbye). Every single block must still
  // come back, bit-identical — failover happens inside the call.
  for (int iter = 0; iter < 30; ++iter) {
    if (iter == 10) kill_worker(s0a);
    if (iter == 20) kill_worker(s1a);
    const KnnResult routed = router.knn(queries, k);
    expect_same_knn(expected.knn, routed,
                    ("iteration " + std::to_string(iter)).c_str());
  }

  const dist::RouterStats& stats = router.stats();
  EXPECT_GE(stats.transport_errors, 2u);  // one per murdered replica
  EXPECT_GE(stats.failovers, 2u);
  EXPECT_EQ(stats.queries, 30u * queries.rows());
}

TEST(NetFaults, CrashAndRestartThroughProxyRecoversAndClosesBreaker) {
  constexpr index_t kShards = 1;
  Worker worker = spawn_worker(0, kShards, "cr0");
  WorkerGuard guard{{&worker}};
  ASSERT_NE(worker.port, 0);

  rbc::testing::FaultProxy proxy("127.0.0.1", worker.port);
  dist::NetRouter router({{"127.0.0.1", proxy.port()}}, fast_options());

  const auto reference = reference_index(kShards);
  const Matrix<float> queries = test_queries();
  const index_t k = 5;
  SearchRequest request{.queries = &queries, .k = k, .options = {}};
  const SearchResponse expected = reference->knn_search(request);

  expect_same_knn(expected.knn, router.knn(queries, k), "before crash");

  // Crash: the process dies, live connections die with it.
  kill_worker(worker);
  proxy.drop_connections();
  EXPECT_THROW((void)router.knn(queries, k), std::runtime_error);
  EXPECT_GE(router.stats().transport_errors, 1u);
  EXPECT_GE(router.stats().breaker_opens, 1u);

  // Restart on a fresh port; the router's endpoint (the proxy) is stable.
  worker = spawn_worker(0, kShards, "cr1");
  ASSERT_NE(worker.port, 0);
  proxy.set_upstream(worker.port);

  // The breaker's half-open probe re-validates the replica and serves.
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  expect_same_knn(expected.knn, router.knn(queries, k), "after restart");
  EXPECT_GE(router.stats().breaker_probes, 1u);
  EXPECT_GE(router.stats().reconnects, 1u);
}

TEST(NetFaults, SlowShardIsAbandonedOnDeadlineAndCoveredShardsStayExact) {
  constexpr index_t kShards = 2;
  Worker s0 = spawn_worker(0, kShards, "sl0");
  Worker s1 = spawn_worker(1, kShards, "sl1");
  WorkerGuard guard{{&s0, &s1}};
  ASSERT_NE(s0.port, 0);
  ASSERT_NE(s1.port, 0);

  rbc::testing::FaultProxy proxy("127.0.0.1", s1.port);
  dist::RouterOptions options = fast_options();
  options.allow_partial = true;
  const std::vector<std::vector<dist::Endpoint>> topology = {
      {{"127.0.0.1", s0.port}}, {{"127.0.0.1", proxy.port()}}};
  dist::NetRouter router(topology, options);

  const Matrix<float> queries = test_queries();
  const index_t k = 10;

  // Shard 1 turns into molasses: every response chunk waits 400ms, far past
  // the 120ms budget.
  proxy.set_plan({.mode = rbc::testing::FaultPlan::Mode::kDelay,
                  .delay_ms = 400});

  // Strict mode fails closed…
  EXPECT_THROW((void)router.knn(queries, k, /*deadline_ms=*/120),
               std::runtime_error);

  // …partial mode degrades: shard 0 exact, shard 1 flagged, no exception.
  const dist::PartialKnnResult partial =
      router.knn_partial(queries, k, /*deadline_ms=*/120);
  ASSERT_EQ(partial.shards.size(), 2u);
  EXPECT_TRUE(partial.shards[0].covered);
  EXPECT_FALSE(partial.shards[1].covered);
  EXPECT_FALSE(partial.shards[1].error.empty());
  EXPECT_EQ(partial.coverage(), (serve::net::Coverage{1, 2}));
  expect_same_knn(expected_partial_knn(queries, k, kShards, {true, false}),
                  partial.result, "partial merge over shard 0");
  EXPECT_GE(router.stats().deadline_exceeded, 1u);
  EXPECT_GE(router.stats().partial_answers, 1u);

  // Molasses drained: full coverage returns, bit-identical to the
  // in-process composite.
  proxy.set_plan({});
  proxy.drop_connections();  // the delayed connection may still be wedged
  const auto reference = reference_index(kShards);
  SearchRequest request{.queries = &queries, .k = k, .options = {}};
  const dist::PartialKnnResult full = router.knn_partial(queries, k);
  EXPECT_TRUE(full.complete());
  expect_same_knn(reference->knn_search(request).knn, full.result,
                  "recovered full coverage");
}

TEST(NetFaults, PartitionedShardYieldsCoverageFlagsNotException) {
  constexpr index_t kShards = 2;
  Worker s0 = spawn_worker(0, kShards, "bh0");
  Worker s1 = spawn_worker(1, kShards, "bh1");
  WorkerGuard guard{{&s0, &s1}};
  ASSERT_NE(s0.port, 0);
  ASSERT_NE(s1.port, 0);

  rbc::testing::FaultProxy proxy("127.0.0.1", s1.port);
  dist::RouterOptions options = fast_options();
  options.allow_partial = true;
  const std::vector<std::vector<dist::Endpoint>> topology = {
      {{"127.0.0.1", s0.port}}, {{"127.0.0.1", proxy.port()}}};
  dist::NetRouter router(topology, options);

  const Matrix<float> queries = test_queries();
  const index_t k = 8;
  const dist_t radius = 1.5f;

  // Total partition: bytes vanish in both directions, connections stay up.
  proxy.set_plan({.mode = rbc::testing::FaultPlan::Mode::kBlackhole});

  const dist::PartialKnnResult knn =
      router.knn_partial(queries, k, /*deadline_ms=*/150);
  EXPECT_TRUE(knn.shards[0].covered);
  EXPECT_FALSE(knn.shards[1].covered);
  expect_same_knn(expected_partial_knn(queries, k, kShards, {true, false}),
                  knn.result, "blackholed knn");

  const dist::PartialRangeResult range =
      router.range_partial(queries, radius, /*deadline_ms=*/150);
  EXPECT_TRUE(range.shards[0].covered);
  EXPECT_FALSE(range.shards[1].covered);
  EXPECT_FALSE(range.complete());

  // Heal the partition: coverage returns without constructing anything new.
  proxy.set_plan({});
  proxy.drop_connections();
  const dist::PartialKnnResult healed = router.knn_partial(queries, k);
  EXPECT_TRUE(healed.complete());
  const auto reference = reference_index(kShards);
  SearchRequest request{.queries = &queries, .k = k, .options = {}};
  expect_same_knn(reference->knn_search(request).knn, healed.result,
                  "healed partition");
  EXPECT_EQ(reference->range_search(
                {.queries = &queries, .radius = radius, .options = {}})
                .ids,
            router.range(queries, radius));
}

TEST(NetFaults, TruncationAndCorruptionAreSurvivableTransportFaults) {
  constexpr index_t kShards = 1;
  Worker worker = spawn_worker(0, kShards, "tc0");
  WorkerGuard guard{{&worker}};
  ASSERT_NE(worker.port, 0);

  rbc::testing::FaultProxy proxy("127.0.0.1", worker.port);
  dist::NetRouter router({{"127.0.0.1", proxy.port()}}, fast_options());

  const auto reference = reference_index(kShards);
  const Matrix<float> queries = test_queries();
  const index_t k = 5;
  SearchRequest request{.queries = &queries, .k = k, .options = {}};
  const SearchResponse expected = reference->knn_search(request);

  // Mid-frame truncation: the response stream is cut after 40 bytes (inside
  // the first frame — a knn response here is kilobytes). The client must
  // fail cleanly, never hand garbage upward.
  proxy.set_plan({.mode = rbc::testing::FaultPlan::Mode::kTruncate,
                  .after_bytes = 40});
  proxy.drop_connections();  // existing connection re-established under plan
  EXPECT_THROW((void)router.knn(queries, k), std::runtime_error);
  EXPECT_GE(proxy.faults_injected(), 1u);

  // Byte corruption in the response header's magic: a ProtocolError-class
  // transport failure, survived the same way.
  proxy.set_plan({.mode = rbc::testing::FaultPlan::Mode::kCorrupt,
                  .after_bytes = 1});
  proxy.drop_connections();
  std::this_thread::sleep_for(std::chrono::milliseconds(120));  // breaker
  EXPECT_THROW((void)router.knn(queries, k), std::runtime_error);

  // Faults cleared: exact service resumes on the same router.
  proxy.set_plan({});
  proxy.drop_connections();
  std::this_thread::sleep_for(std::chrono::milliseconds(120));
  expect_same_knn(expected.knn, router.knn(queries, k), "after abuse");
  EXPECT_GE(router.stats().transport_errors, 2u);
}

TEST(NetFaults, SeededFaultScheduleKeepsEveryCoveredAnswerExact) {
  constexpr index_t kShards = 2;
  Worker s0 = spawn_worker(0, kShards, "sc0");
  Worker s1 = spawn_worker(1, kShards, "sc1");
  WorkerGuard guard{{&s0, &s1}};
  ASSERT_NE(s0.port, 0);
  ASSERT_NE(s1.port, 0);

  rbc::testing::FaultProxy proxy("127.0.0.1", s1.port);
  dist::RouterOptions options = fast_options();
  options.allow_partial = true;
  const std::vector<std::vector<dist::Endpoint>> topology = {
      {{"127.0.0.1", s0.port}}, {{"127.0.0.1", proxy.port()}}};
  dist::NetRouter router(topology, options);

  const auto reference = reference_index(kShards);
  const Matrix<float> queries = test_queries();
  const index_t k = 10;
  SearchRequest request{.queries = &queries, .k = k, .options = {}};
  const SearchResponse expected = reference->knn_search(request);
  const KnnResult expected_partial =
      expected_partial_knn(queries, k, kShards, {true, false});

  // Every new connection to shard 1 draws a fault from the seeded menu:
  // clean, reset mid-frame, truncated mid-frame, or slow. Replayable — the
  // same seed yields the same schedule every run.
  using rbc::testing::FaultPlan;
  proxy.set_schedule(
      {
          FaultPlan{},  // healthy
          FaultPlan{.mode = FaultPlan::Mode::kReset, .after_bytes = 60},
          FaultPlan{.mode = FaultPlan::Mode::kTruncate, .after_bytes = 80},
          FaultPlan{.mode = FaultPlan::Mode::kDelay, .delay_ms = 40},
      },
      /*seed=*/42);
  proxy.drop_connections();

  int complete = 0, partial = 0;
  for (int iter = 0; iter < 25; ++iter) {
    // A healthy connection would serve forever; periodically cut every
    // live connection so the router keeps drawing new (seeded) plans.
    if (iter > 0 && iter % 5 == 0) proxy.drop_connections();
    const dist::PartialKnnResult r =
        router.knn_partial(queries, k, /*deadline_ms=*/500);
    ASSERT_TRUE(r.shards[0].covered) << "un-faulted shard lost at " << iter;
    if (r.complete()) {
      complete += 1;
      expect_same_knn(expected.knn, r.result,
                      ("complete answer " + std::to_string(iter)).c_str());
    } else {
      partial += 1;
      expect_same_knn(expected_partial, r.result,
                      ("partial answer " + std::to_string(iter)).c_str());
    }
  }
  // The schedule mixes healthy and faulty connections; with failover
  // retries inside the budget, most answers complete. The run must have
  // seen real faults (deterministic given the seed).
  EXPECT_EQ(complete + partial, 25);
  EXPECT_GT(complete, 0);
  EXPECT_GE(proxy.faults_injected(), 1u);
  EXPECT_GE(router.stats().transport_errors, 1u);
  EXPECT_EQ(router.stats().queries,
            25u * static_cast<std::uint64_t>(queries.rows()));

  // And the stats ledger is coherent: every breaker probe follows an open.
  const dist::RouterStats& stats = router.stats();
  EXPECT_GE(stats.requests,
            25u * kShards);  // at least one attempt per shard per block
  if (stats.breaker_probes > 0) EXPECT_GE(stats.breaker_opens, 1u);
}

}  // namespace

// ------------------------------------------------------- shard worker mode --

namespace {
int g_worker_stop_fd = -1;
void worker_signal(int) {
  const std::uint64_t one = 1;
  [[maybe_unused]] ssize_t n = write(g_worker_stop_fd, &one, sizeof one);
}
}  // namespace

/// Shard-owner process: builds this shard's rows of the shared
/// deterministic database and serves them until SIGTERM (replicas are
/// simply two workers with the same arguments — deterministic builds make
/// them identical).
int run_fault_shard_worker(index_t shard, index_t num_shards,
                           const std::string& port_file) {
  const Matrix<float> database = test_database();
  const auto assignment = shard::partition_rows(database.rows(), num_shards,
                                                shard::Partition::kContiguous);
  const std::vector<index_t>& mine = assignment[shard];
  Matrix<float> rows(static_cast<index_t>(mine.size()), database.cols());
  for (index_t i = 0; i < rows.rows(); ++i)
    rows.copy_row_from(database, mine[i], i);

  auto index = make_index("rbc-exact", shard_options(num_shards));
  index->build(rows);
  serve::net::RbcServer server(std::move(index));
  g_worker_stop_fd = server.stop_fd();
  std::signal(SIGTERM, worker_signal);

  const std::string tmp = port_file + ".tmp";
  {
    std::ofstream os(tmp);
    os << server.port() << "\n";
  }
  std::rename(tmp.c_str(), port_file.c_str());

  server.wait();
  server.stop();
  return 0;
}

}  // namespace rbc

int main(int argc, char** argv) {
  if (argc >= 5 && std::strcmp(argv[1], "--fault-shard-worker") == 0)
    return rbc::run_fault_shard_worker(
        static_cast<rbc::index_t>(std::atoi(argv[2])),
        static_cast<rbc::index_t>(std::atoi(argv[3])), argv[4]);
  ::testing::InitGoogleTest(&argc, argv);
  return RUN_ALL_TESTS();
}
