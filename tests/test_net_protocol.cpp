// Wire-protocol codec tests: every message round-trips exactly, and every
// way a frame can be malformed — truncation at any byte, garbage counts,
// payload/length disagreement, trailing bytes, bad magic/version/flags —
// throws a clean ProtocolError instead of crashing or allocating from
// attacker-controlled lengths (the network mirror of test_corrupt_files.cpp).
#include <gtest/gtest.h>

#include <cstring>
#include <vector>

#include "serve/net/protocol.hpp"
#include "test_util.hpp"

namespace rbc::serve::net {
namespace {

using namespace std::string_literals;

std::span<const std::uint8_t> payload_of(
    const std::vector<std::uint8_t>& frame) {
  return {frame.data() + kHeaderSize, frame.size() - kHeaderSize};
}

TEST(NetProtocol, HeaderRoundTrip) {
  const std::vector<std::uint8_t> frame =
      encode_frame(Op::kInfoRequest, 0xDEADBEEFCAFEBABEull, {});
  ASSERT_EQ(frame.size(), kHeaderSize);
  const auto header = parse_header(frame);
  ASSERT_TRUE(header.has_value());
  EXPECT_EQ(header->version, kNetVersion);
  EXPECT_EQ(header->op, Op::kInfoRequest);
  EXPECT_EQ(header->request_id, 0xDEADBEEFCAFEBABEull);
  EXPECT_EQ(header->payload_len, 0u);
}

TEST(NetProtocol, ShortHeaderAsksForMoreBytes) {
  const std::vector<std::uint8_t> frame = encode_frame(Op::kInfoRequest, 7, {});
  for (std::size_t n = 0; n < kHeaderSize; ++n)
    EXPECT_FALSE(parse_header({frame.data(), n}).has_value()) << n;
}

TEST(NetProtocol, HeaderRejectsBadMagicVersionOpcodeFlagsAndOversize) {
  const std::vector<std::uint8_t> good =
      encode_frame(Op::kKnnRequest, 1, std::vector<std::uint8_t>(4, 0));

  auto mutated = [&](std::size_t offset, std::uint8_t value) {
    std::vector<std::uint8_t> bad = good;
    bad[offset] = value;
    return bad;
  };
  EXPECT_THROW((void)parse_header(mutated(0, 0xFF)), ProtocolError);  // magic
  EXPECT_THROW((void)parse_header(mutated(5, 0)), ProtocolError);    // opcode
  EXPECT_THROW((void)parse_header(mutated(5, 200)), ProtocolError);  // opcode
  EXPECT_THROW((void)parse_header(mutated(6, 1)), ProtocolError);    // flags

  // The accepted version band is [kNetVersionMin, kNetVersion]; both ends
  // parse, everything outside throws.
  EXPECT_THROW((void)parse_header(mutated(4, 0)), ProtocolError);
  EXPECT_THROW((void)parse_header(mutated(4, kNetVersion + 1)), ProtocolError);
  EXPECT_THROW((void)parse_header(mutated(4, 99)), ProtocolError);
  for (std::uint8_t v = kNetVersionMin; v <= kNetVersion; ++v) {
    const auto header = parse_header(mutated(4, v));
    ASSERT_TRUE(header.has_value());
    EXPECT_EQ(header->version, v);
  }

  // payload_len over the configured cap is rejected before any payload read.
  std::vector<std::uint8_t> oversize = good;
  const std::uint32_t huge = 1u << 30;
  std::memcpy(oversize.data() + 16, &huge, 4);
  EXPECT_THROW((void)parse_header(oversize, /*max_payload=*/1 << 20),
               ProtocolError);
}

TEST(NetProtocol, KnnRequestRoundTrip) {
  const Matrix<float> queries = testutil::random_matrix(7, 5, 11);
  const std::vector<std::uint8_t> frame = encode_knn_request(42, queries, 3);
  const auto header = parse_header(frame);
  ASSERT_TRUE(header.has_value());
  EXPECT_EQ(header->op, Op::kKnnRequest);
  EXPECT_EQ(frame.size(), kHeaderSize + header->payload_len);

  const KnnRequestMsg msg = decode_knn_request(payload_of(frame));
  EXPECT_EQ(msg.k, 3u);
  ASSERT_EQ(msg.queries.rows(), 7u);
  ASSERT_EQ(msg.queries.cols(), 5u);
  for (index_t i = 0; i < 7; ++i)
    for (index_t j = 0; j < 5; ++j)
      EXPECT_EQ(msg.queries.at(i, j), queries.at(i, j));
}

TEST(NetProtocol, KnnResponseRoundTrip) {
  KnnResult result(3, 2);
  for (index_t i = 0; i < 3; ++i)
    for (index_t j = 0; j < 2; ++j) {
      result.ids.at(i, j) = i * 10 + j;
      result.dists.at(i, j) = 0.5f * static_cast<float>(i + j);
    }
  const std::vector<std::uint8_t> frame = encode_knn_response(9, result);
  const KnnResponseMsg back = decode_knn_response(payload_of(frame));
  ASSERT_EQ(back.result.ids.rows(), 3u);
  ASSERT_EQ(back.result.ids.cols(), 2u);
  for (index_t i = 0; i < 3; ++i)
    for (index_t j = 0; j < 2; ++j) {
      EXPECT_EQ(back.result.ids.at(i, j), result.ids.at(i, j));
      EXPECT_EQ(back.result.dists.at(i, j), result.dists.at(i, j));
    }
  EXPECT_EQ(back.coverage, (Coverage{1, 1}));  // default trailer: full
}

TEST(NetProtocol, RangeRoundTrips) {
  const Matrix<float> queries = testutil::random_matrix(4, 6, 13);
  const std::vector<std::uint8_t> request =
      encode_range_request(5, queries, 1.25f);
  const RangeRequestMsg msg = decode_range_request(payload_of(request));
  EXPECT_EQ(msg.radius, 1.25f);
  EXPECT_EQ(msg.queries.rows(), 4u);
  EXPECT_EQ(msg.queries.at(2, 3), queries.at(2, 3));

  const std::vector<std::vector<index_t>> ids = {{1, 2, 3}, {}, {7}, {0, 9}};
  const std::vector<std::uint8_t> response = encode_range_response(5, ids);
  const RangeResponseMsg back = decode_range_response(payload_of(response));
  EXPECT_EQ(back.ids, ids);
  EXPECT_EQ(back.coverage, (Coverage{1, 1}));
}

// ------------------------------------------------- v2 / version interop ---

TEST(NetProtocol, DeadlineRidesV2RequestsAndRoundTrips) {
  const Matrix<float> queries = testutil::random_matrix(3, 4, 23);
  const std::vector<std::uint8_t> knn =
      encode_knn_request(1, queries, 2, /*deadline_ms=*/750, /*version=*/2);
  const auto knn_header = parse_header(knn);
  ASSERT_TRUE(knn_header.has_value());
  EXPECT_EQ(knn_header->version, 2u);
  const KnnRequestMsg knn_msg =
      decode_knn_request(payload_of(knn), knn_header->version);
  EXPECT_EQ(knn_msg.deadline_ms, 750u);
  EXPECT_EQ(knn_msg.k, 2u);

  const std::vector<std::uint8_t> range = encode_range_request(
      2, queries, 0.5f, /*deadline_ms=*/125, /*version=*/2);
  const RangeRequestMsg range_msg = decode_range_request(payload_of(range), 2);
  EXPECT_EQ(range_msg.deadline_ms, 125u);
  EXPECT_EQ(range_msg.radius, 0.5f);
}

TEST(NetProtocol, Version1FramesAreByteIdenticalToPreV2Protocol) {
  // The v1 knn request layout was {k, nq, dim, rows...}: no deadline word.
  // Interop with old peers depends on v1 encodes reproducing it exactly.
  const Matrix<float> queries = testutil::random_matrix(2, 3, 29);
  const std::vector<std::uint8_t> v1 =
      encode_knn_request(7, queries, 4, /*deadline_ms=*/0, /*version=*/1);
  const auto header = parse_header(v1);
  ASSERT_TRUE(header.has_value());
  EXPECT_EQ(header->version, 1u);
  // Sized exactly as the old layout: k + nq + dim + 2*3 floats.
  EXPECT_EQ(header->payload_len, 4u + 4u + 4u + 2u * 3u * 4u);
  const KnnRequestMsg msg = decode_knn_request(payload_of(v1), 1);
  EXPECT_EQ(msg.k, 4u);
  EXPECT_EQ(msg.deadline_ms, 0u);  // v1 cannot carry one
  EXPECT_EQ(msg.queries.at(1, 2), queries.at(1, 2));

  // Same for the response: v1 carries no coverage trailer, and decodes as
  // full coverage.
  KnnResult result(2, 4);
  const std::vector<std::uint8_t> response =
      encode_knn_response(7, result, {1, 1}, /*version=*/1);
  const auto response_header = parse_header(response);
  ASSERT_TRUE(response_header.has_value());
  EXPECT_EQ(response_header->payload_len,
            4u + 4u + 2u * 4u * 4u + 2u * 4u * 4u);
  EXPECT_EQ(decode_knn_response(payload_of(response), 1).coverage,
            (Coverage{1, 1}));

  // Decoding a v1 payload as v2 (or vice versa) is a framing bug and must
  // fail loudly, not misparse rows as deadlines.
  EXPECT_THROW((void)decode_knn_request(payload_of(v1), 2), ProtocolError);
}

TEST(NetProtocol, CoverageTrailerRoundTripsAndRejectsGarbage) {
  KnnResult result(1, 1);
  const std::vector<std::uint8_t> knn =
      encode_knn_response(3, result, {2, 5});
  EXPECT_EQ(decode_knn_response(payload_of(knn)).coverage, (Coverage{2, 5}));

  const std::vector<std::uint8_t> range =
      encode_range_response(4, {{1}}, {0, 3});
  EXPECT_EQ(decode_range_response(payload_of(range)).coverage,
            (Coverage{0, 3}));

  // covered > total and total == 0 are nonsense whatever the transport did.
  {
    std::vector<std::uint8_t> bad = knn;
    const std::uint32_t covered = 6;  // > total = 5, last 8 bytes of payload
    std::memcpy(bad.data() + bad.size() - 8, &covered, 4);
    EXPECT_THROW((void)decode_knn_response(payload_of(bad)), ProtocolError);
  }
  {
    std::vector<std::uint8_t> bad = knn;
    const std::uint32_t zero = 0;
    std::memcpy(bad.data() + bad.size() - 4, &zero, 4);  // total = 0
    EXPECT_THROW((void)decode_knn_response(payload_of(bad)), ProtocolError);
  }

  // v1 must not accept (or emit) a partial trailer: encoding a partial
  // coverage under version 1 would silently drop it, so it throws.
  EXPECT_THROW((void)encode_knn_response(5, result, {0, 2}, /*version=*/1),
               ProtocolError);
  EXPECT_THROW((void)encode_range_response(5, {{1}}, {0, 2}, /*version=*/1),
               ProtocolError);
}

TEST(NetProtocol, CodecsRejectVersionsOutsideTheBand) {
  const Matrix<float> queries = testutil::random_matrix(1, 2, 31);
  for (const std::uint8_t v :
       {std::uint8_t{0}, std::uint8_t{kNetVersion + 1}}) {
    EXPECT_THROW((void)encode_knn_request(1, queries, 1, 0, v), ProtocolError);
    EXPECT_THROW((void)decode_knn_request({}, v), ProtocolError);
    EXPECT_THROW((void)encode_knn_response(1, KnnResult(1, 1), {}, v),
                 ProtocolError);
    EXPECT_THROW((void)decode_range_response({}, v), ProtocolError);
    EXPECT_THROW((void)encode_frame(Op::kInfoRequest, 1, {}, v),
                 ProtocolError);
  }
}

TEST(NetProtocol, InfoRoundTrip) {
  InfoMsg info;
  info.backend = "rbc-exact";
  info.metric = "cosine";
  info.size = 12345;
  info.dim = 32;
  info.completed = 777;
  info.rejected = 3;
  info.p50_ms = 0.25;
  info.p99_ms = 4.5;
  info.conn_requests = 10;
  info.conn_rejected = 1;
  info.conn_bytes_in = 2048;
  info.conn_bytes_out = 4096;
  info.cost_unit = "chars_compared";
  info.metric_cost = 123456;
  const std::vector<std::uint8_t> frame = encode_info_response(2, info);
  const InfoMsg back = decode_info_response(payload_of(frame));
  EXPECT_EQ(back.backend, info.backend);
  EXPECT_EQ(back.metric, info.metric);
  EXPECT_EQ(back.size, info.size);
  EXPECT_EQ(back.dim, info.dim);
  EXPECT_EQ(back.completed, info.completed);
  EXPECT_EQ(back.rejected, info.rejected);
  EXPECT_EQ(back.p50_ms, info.p50_ms);
  EXPECT_EQ(back.p99_ms, info.p99_ms);
  EXPECT_EQ(back.conn_requests, info.conn_requests);
  EXPECT_EQ(back.conn_rejected, info.conn_rejected);
  EXPECT_EQ(back.conn_bytes_in, info.conn_bytes_in);
  EXPECT_EQ(back.conn_bytes_out, info.conn_bytes_out);
  EXPECT_EQ(back.cost_unit, info.cost_unit);
  EXPECT_EQ(back.metric_cost, info.metric_cost);

  // v1/v2 info frames have no cost tail; the decoder leaves the defaults.
  const std::vector<std::uint8_t> v2 =
      encode_info_response(2, info, /*version=*/2);
  EXPECT_LT(v2.size(), frame.size());
  const InfoMsg old = decode_info_response(payload_of(v2), 2);
  EXPECT_EQ(old.backend, info.backend);
  EXPECT_EQ(old.cost_unit, "");
  EXPECT_EQ(old.metric_cost, 0u);
}

// ------------------------------------------------- v3 / payload queries ---

TEST(NetProtocol, KnnPayloadRequestRoundTrip) {
  const std::vector<std::string> queries = {"kitten", "", "a\0b\x7f"s};
  const std::vector<std::uint8_t> frame =
      encode_knn_payload_request(21, queries, 4, /*deadline_ms=*/300);
  const auto header = parse_header(frame);
  ASSERT_TRUE(header.has_value());
  EXPECT_EQ(header->op, Op::kKnnPayloadRequest);
  EXPECT_EQ(header->version, kNetVersion);
  const KnnPayloadRequestMsg msg =
      decode_knn_payload_request(payload_of(frame), header->version);
  EXPECT_EQ(msg.k, 4u);
  EXPECT_EQ(msg.deadline_ms, 300u);
  EXPECT_EQ(msg.queries, queries);  // embedded NUL and all
}

TEST(NetProtocol, PayloadRequestsAreV3Only) {
  const std::vector<std::string> queries = {"q"};
  // Neither side can express a payload query in an older frame.
  EXPECT_THROW(
      (void)encode_knn_payload_request(1, queries, 1, 0, /*version=*/2),
      ProtocolError);
  EXPECT_THROW((void)decode_knn_payload_request({}, /*version=*/2),
               ProtocolError);

  // A frame claiming the payload opcode under v1/v2 is malformed at the
  // header: the opcode did not exist in those versions.
  std::vector<std::uint8_t> frame = encode_knn_payload_request(1, queries, 1);
  frame[4] = 2;  // version byte
  EXPECT_THROW((void)parse_header(frame), ProtocolError);
}

TEST(NetProtocol, PayloadRequestRejectsGarbageCounts) {
  // k = 0, an implausible row count, and a per-query length past
  // kMaxStringLen must all be rejected before any allocation.
  const std::vector<std::string> queries = {"abc"};
  std::vector<std::uint8_t> frame = encode_knn_payload_request(1, queries, 2);
  {
    std::vector<std::uint8_t> bad = frame;
    const std::uint32_t zero = 0;
    std::memcpy(bad.data() + kHeaderSize, &zero, 4);  // k = 0
    EXPECT_THROW((void)decode_knn_payload_request(payload_of(bad)),
                 ProtocolError);
  }
  {
    std::vector<std::uint8_t> bad = frame;
    const std::uint32_t huge = 1u << 30;
    std::memcpy(bad.data() + kHeaderSize + 8, &huge, 4);  // nq
    EXPECT_THROW((void)decode_knn_payload_request(payload_of(bad)),
                 ProtocolError);
  }
  {
    std::vector<std::uint8_t> bad = frame;
    const std::uint32_t len = kMaxStringLen + 1;
    std::memcpy(bad.data() + kHeaderSize + 12, &len, 4);  // query length
    EXPECT_THROW((void)decode_knn_payload_request(payload_of(bad)),
                 ProtocolError);
  }
  // The encoder enforces the same per-query cap.
  EXPECT_THROW((void)encode_knn_payload_request(
                   1, {std::string(kMaxStringLen + 1, 'x')}, 1),
               ProtocolError);
}

TEST(NetProtocol, ReloadAndErrorRoundTrip) {
  const std::vector<std::uint8_t> reload =
      encode_reload_request(1, "/tmp/index.rbc");
  EXPECT_EQ(decode_reload_request(payload_of(reload)), "/tmp/index.rbc");

  const ErrorMsg error{ErrorCode::kOverloaded, 75, "queue full"};
  const std::vector<std::uint8_t> frame = encode_error(8, error);
  const ErrorMsg back = decode_error(payload_of(frame));
  EXPECT_EQ(back.code, ErrorCode::kOverloaded);
  EXPECT_EQ(back.retry_after_ms, 75u);
  EXPECT_EQ(back.message, "queue full");
}

// ------------------------------------------------------------- hardening ---

TEST(NetProtocol, EveryPayloadTruncationThrowsCleanly) {
  const Matrix<float> queries = testutil::random_matrix(3, 4, 17);
  KnnResult result(2, 3);
  std::vector<std::vector<std::uint8_t>> frames = {
      encode_info_response(5, {"b", "l2", 10, 4, 0, 0, 0, 0, 0, 0, 0, 0}),
      encode_reload_request(6, "some/path"),
      encode_error(7, {ErrorCode::kInternal, 0, "boom"}),
  };
  // Both wire versions of every versioned codec join the sweep: the v2
  // layouts (deadline word, coverage trailer) must be as truncation-proof
  // as the v1 ones.
  for (std::uint8_t v = kNetVersionMin; v <= kNetVersion; ++v) {
    frames.push_back(encode_knn_request(1, queries, 2, 30, v));
    frames.push_back(encode_knn_response(2, result, {1, 1}, v));
    frames.push_back(encode_range_request(3, queries, 2.0f, 30, v));
    frames.push_back(encode_range_response(4, {{1, 2}, {3}}, {1, 1}, v));
  }
  // v3-only codec: one frame version to sweep.
  frames.push_back(encode_knn_payload_request(8, {"ab", "", "cde"}, 2, 30));
  for (const std::vector<std::uint8_t>& frame : frames) {
    const auto header = parse_header(frame);
    ASSERT_TRUE(header.has_value());
    const std::uint8_t v = header->version;
    const std::span<const std::uint8_t> payload = payload_of(frame);
    // Cut the payload at EVERY length short of complete: the decoder must
    // throw ProtocolError each time, never read out of bounds (ASan-checked
    // in the sanitize job) or allocate from a phantom count.
    for (std::size_t cut = 0; cut < payload.size(); ++cut) {
      const std::span<const std::uint8_t> sub = payload.subspan(0, cut);
      switch (header->op) {
        case Op::kKnnRequest:
          EXPECT_THROW((void)decode_knn_request(sub, v), ProtocolError);
          break;
        case Op::kKnnPayloadRequest:
          EXPECT_THROW((void)decode_knn_payload_request(sub, v),
                       ProtocolError);
          break;
        case Op::kKnnResponse:
          EXPECT_THROW((void)decode_knn_response(sub, v), ProtocolError);
          break;
        case Op::kRangeRequest:
          EXPECT_THROW((void)decode_range_request(sub, v), ProtocolError);
          break;
        case Op::kRangeResponse:
          EXPECT_THROW((void)decode_range_response(sub, v), ProtocolError);
          break;
        case Op::kInfoResponse:
          EXPECT_THROW((void)decode_info_response(sub), ProtocolError);
          break;
        case Op::kReloadRequest:
          EXPECT_THROW((void)decode_reload_request(sub), ProtocolError);
          break;
        case Op::kError:
          EXPECT_THROW((void)decode_error(sub), ProtocolError);
          break;
        default:
          FAIL() << "unexpected op";
      }
    }
  }
}

TEST(NetProtocol, TrailingBytesAreRejected) {
  const Matrix<float> queries = testutil::random_matrix(2, 3, 19);
  std::vector<std::uint8_t> frame = encode_knn_request(1, queries, 2);
  frame.push_back(0x42);  // one byte past the message's own end
  const std::span<const std::uint8_t> payload{frame.data() + kHeaderSize,
                                              frame.size() - kHeaderSize};
  EXPECT_THROW((void)decode_knn_request(payload), ProtocolError);
}

TEST(NetProtocol, GarbageCountsNeverDriveAllocation) {
  // A knn request claiming 2^31 rows in a 16-byte payload: the row-count
  // caps and count-vs-bytes checks must fire before any allocation.
  std::vector<std::uint8_t> payload(16, 0);
  const std::uint32_t k = 1, nq = 1u << 31, dim = 64;
  std::memcpy(payload.data(), &k, 4);
  std::memcpy(payload.data() + 4, &nq, 4);
  std::memcpy(payload.data() + 8, &dim, 4);
  EXPECT_THROW((void)decode_knn_request(payload), ProtocolError);

  // A range response whose per-row hit count exceeds the bytes present.
  std::vector<std::uint8_t> range(8, 0);
  const std::uint32_t rows = 1, hits = 1000;
  std::memcpy(range.data(), &rows, 4);
  std::memcpy(range.data() + 4, &hits, 4);
  EXPECT_THROW((void)decode_range_response(range), ProtocolError);

  // An info response claiming a 4 GiB backend-name string.
  std::vector<std::uint8_t> info(8, 0);
  const std::uint32_t len = 0xFFFFFFFF;
  std::memcpy(info.data(), &len, 4);
  EXPECT_THROW((void)decode_info_response(info), ProtocolError);

  // k = 0 in a knn request is meaningless and must be rejected.
  std::vector<std::uint8_t> zero_k(12, 0);
  EXPECT_THROW((void)decode_knn_request(zero_k), ProtocolError);
}

TEST(NetProtocol, RandomGarbagePayloadsThrowOrDecode) {
  // Deterministic fuzz: feed every decoder random bytes. Any outcome is
  // fine except a crash/UB — decoders must either throw ProtocolError or
  // (rarely) produce a structurally valid message.
  Rng rng(1234);
  for (int iter = 0; iter < 200; ++iter) {
    std::vector<std::uint8_t> bytes(rng.uniform_index(64));
    for (std::uint8_t& b : bytes)
      b = static_cast<std::uint8_t>(rng.uniform_index(256));
    const auto poke = [&](auto&& decode) {
      try {
        (void)decode(bytes);
      } catch (const ProtocolError&) {
      }
    };
    for (std::uint8_t v = kNetVersionMin; v <= kNetVersion; ++v) {
      poke([v](auto b) { return decode_knn_request(b, v); });
      poke([v](auto b) { return decode_knn_response(b, v); });
      poke([v](auto b) { return decode_range_request(b, v); });
      poke([v](auto b) { return decode_range_response(b, v); });
      if (v >= 3)
        poke([v](auto b) { return decode_knn_payload_request(b, v); });
    }
    poke([](auto b) { return decode_info_response(b); });
    poke([](auto b) { return decode_reload_request(b); });
    poke([](auto b) { return decode_error(b); });
  }
}

TEST(NetProtocol, UnknownErrorCodeIsRejected) {
  std::vector<std::uint8_t> frame =
      encode_error(1, {ErrorCode::kBadRequest, 0, "x"});
  const std::uint16_t bogus = 999;
  std::memcpy(frame.data() + kHeaderSize, &bogus, 2);
  EXPECT_THROW((void)decode_error(payload_of(frame)), ProtocolError);
}

}  // namespace
}  // namespace rbc::serve::net
