// Instantiates the cross-backend conformance suite (tests/conformance.hpp)
// over every factory-registered backend, and proves the instantiation
// actually covers the registry — a backend registered without conformance
// coverage fails ConformanceCoverage, so the suite cannot silently rot.
#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "conformance.hpp"
#include "distance/dispatch.hpp"

namespace rbc {
namespace {

using conformance::ConformanceTest;

TEST_P(ConformanceTest, AnswersMatchTheReference) {
  conformance::check_answers(GetParam());
}

TEST_P(ConformanceTest, RequestErrorsFollowTheUnifiedContract) {
  conformance::check_error_contract(GetParam());
}

TEST_P(ConformanceTest, DegenerateInputsAreHandled) {
  conformance::check_degenerate_inputs(GetParam());
}

TEST_P(ConformanceTest, SerializeRoundTripIsExact) {
  conformance::check_serialize_roundtrip(GetParam());
}

TEST_P(ConformanceTest, ConcurrentSearchesAreConsistent) {
  conformance::check_concurrent_search(GetParam());
}

TEST_P(ConformanceTest, ShardedVariantsAreBitIdenticalToTheirInner) {
  conformance::check_sharded_bit_parity(GetParam());
}

TEST_P(ConformanceTest, MetricMatrixMatchesThePerMetricReference) {
  conformance::check_metric_matrix(GetParam());
}

TEST_P(ConformanceTest, UnsupportedMetricsFollowTheUniformContract) {
  conformance::check_unsupported_metric_contract(GetParam());
}

TEST_P(ConformanceTest, MetricSerializeRoundTripsPreserveTheMetric) {
  conformance::check_metric_serialize_roundtrip(GetParam());
}

TEST_P(ConformanceTest, ShardedCosineIsBitIdenticalToTheInner) {
  conformance::check_sharded_metric_parity(GetParam());
}

TEST_P(ConformanceTest, MutationEntryPointsFollowTheUniformContract) {
  conformance::check_mutation_contract(GetParam());
}

TEST_P(ConformanceTest, MutateThenSearchMatchesAScratchRebuild) {
  conformance::check_mutate_then_search(GetParam());
}

TEST_P(ConformanceTest, MutatedSerializeRoundTripIsExact) {
  conformance::check_mutated_serialize_roundtrip(GetParam());
}

INSTANTIATE_TEST_SUITE_P(AllRegisteredBackends, ConformanceTest,
                         ::testing::ValuesIn(registered_backends()),
                         [](const auto& info) {
                           return conformance::sanitized(info.param);
                         });

// ---------------------------------------- generic metric-space conformance

using conformance::GenericSpaceConformanceTest;

TEST_P(GenericSpaceConformanceTest, DeclaredSpacesHaveMatrixCoverage) {
  conformance::check_payload_space_coverage(GetParam());
}

TEST_P(GenericSpaceConformanceTest, AnswersMatchThePerSpaceReference) {
  conformance::check_payload_answers(GetParam());
}

TEST_P(GenericSpaceConformanceTest, RequestErrorsFollowTheUnifiedContract) {
  conformance::check_payload_error_contract(GetParam());
}

TEST_P(GenericSpaceConformanceTest, SerializeRoundTripIsExact) {
  conformance::check_payload_serialize_roundtrip(GetParam());
}

TEST_P(GenericSpaceConformanceTest, ShardedVariantsAreBitIdenticalToTheirInner) {
  conformance::check_payload_sharded_parity(GetParam());
}

TEST_P(GenericSpaceConformanceTest, ConcurrentSearchesAreConsistent) {
  conformance::check_payload_concurrent_search(GetParam());
}

INSTANTIATE_TEST_SUITE_P(PayloadCapableBackends, GenericSpaceConformanceTest,
                         ::testing::ValuesIn(
                             conformance::payload_capable_backends()),
                         [](const auto& info) {
                           return conformance::sanitized(info.param);
                         });

// The acceptance bar of the metric redesign: for every supported
// (backend, metric) pair of the dispatched backends, forcing each compiled
// ISA must return bit-identical results — the prefilter + scalar-re-measure
// contract, now holding per metric. Scoped to the backends that actually
// consult the dispatcher (trees never do; the sharded composite is pinned
// separately by its bit-parity checks).
TEST(MetricIsaParity, DispatchedBackendsAreBitIdenticalAcrossForcedIsas) {
  std::vector<dispatch::Isa> isas;
  for (const dispatch::Isa isa :
       {dispatch::Isa::kScalar, dispatch::Isa::kAvx2, dispatch::Isa::kAvx512})
    if (dispatch::isa_available(isa)) isas.push_back(isa);

  const conformance::Dataset data =
      std::move(conformance::datasets().front());
  const index_t k = 5;
  for (const std::string& backend : {std::string("bruteforce"),
                                     std::string("rbc-exact"),
                                     std::string("rbc-oneshot")}) {
    const std::vector<std::string> supported =
        make_index(backend, conformance::suite_options())
            ->info()
            .supported_metrics;
    for (const std::string& name : supported) {
      KnnResult reference;
      for (std::size_t i = 0; i < isas.size(); ++i) {
        SCOPED_TRACE(backend + " metric=" + name + " isa=" +
                     dispatch::isa_name(isas[i]));
        dispatch::force_isa(isas[i]);
        IndexOptions options = conformance::suite_options();
        options.metric = name;
        auto index = make_index(backend, options);
        index->build(data.X);  // built AND searched under the forced ISA
        KnnResult result = index->knn_search({.queries = &data.Q, .k = k}).knn;
        if (i == 0)
          reference = std::move(result);
        else
          EXPECT_TRUE(testutil::knn_equal(reference, result))
              << backend << "/" << name << " diverged between "
              << dispatch::isa_name(isas[0]) << " and "
              << dispatch::isa_name(isas[i]);
      }
    }
  }
  dispatch::clear_forced_isa();
}

// Acceptance bar of the compressed scan tier: for the exact dispatched
// backends, building with storage "fp16" or "int8" must return answers
// bit-identical to the float32 build — across every dataset, the L2-family
// metrics, and every compiled ISA. The quantized kernels only prefilter;
// survivors of the error-inflated bound are re-measured against the float
// rows (kernel_scan.hpp), so nothing observable may change.
TEST(QuantizedStorage, ExactBackendsAreBitIdenticalToFloat32AcrossIsas) {
  std::vector<dispatch::Isa> isas;
  for (const dispatch::Isa isa :
       {dispatch::Isa::kScalar, dispatch::Isa::kAvx2, dispatch::Isa::kAvx512})
    if (dispatch::isa_available(isa)) isas.push_back(isa);

  const std::vector<conformance::Dataset> sets = conformance::datasets();
  const index_t k = 5;
  for (const std::string& backend :
       {std::string("bruteforce"), std::string("rbc-exact")}) {
    for (const std::string& metric : {std::string("l2"),
                                      std::string("cosine")}) {
      for (const conformance::Dataset& data : sets) {
        for (const dispatch::Isa isa : isas) {
          dispatch::force_isa(isa);
          IndexOptions options = conformance::suite_options();
          options.metric = metric;
          auto reference = make_index(backend, options);
          reference->build(data.X);
          const KnnResult expected =
              reference->knn_search({.queries = &data.Q, .k = k}).knn;
          for (const std::string& storage : {std::string("fp16"),
                                             std::string("int8")}) {
            SCOPED_TRACE(backend + "/" + metric + "/" + storage + " on " +
                         data.name + " isa=" + dispatch::isa_name(isa));
            options.storage = storage;
            auto index = make_index(backend, options);
            index->build(data.X);
            EXPECT_EQ(index->info().storage, storage);
            EXPECT_TRUE(testutil::knn_equal(
                expected,
                index->knn_search({.queries = &data.Q, .k = k}).knn));
          }
        }
      }
    }
  }
  dispatch::clear_forced_isa();
}

// rbc-oneshot runs the quantized scan standalone (no re-measure — the
// structure is already approximate), so it reports quantized distances.
// Recall against the exact answer must stay essentially at the float32
// build's level: the codes perturb each distance by at most err_max, which
// only reorders near-ties.
TEST(QuantizedStorage, OneShotQuantizedKeepsFloat32Recall) {
  const conformance::Dataset data =
      std::move(conformance::datasets().front());
  auto exact = conformance::build_index("bruteforce", data.X);
  const KnnResult truth =
      exact->knn_search({.queries = &data.Q, .k = 1}).knn;

  IndexOptions options = conformance::suite_options();
  auto base = make_index("rbc-oneshot", options);
  base->build(data.X);
  const double base_recall = conformance::recall_at_1(
      base->knn_search({.queries = &data.Q, .k = 1}).knn, truth);

  for (const std::string& storage : {std::string("fp16"),
                                     std::string("int8")}) {
    SCOPED_TRACE("storage=" + storage);
    options.storage = storage;
    auto index = make_index("rbc-oneshot", options);
    index->build(data.X);
    EXPECT_FALSE(index->info().exact);
    const double recall = conformance::recall_at_1(
        index->knn_search({.queries = &data.Q, .k = 1}).knn, truth);
    EXPECT_GE(recall, base_recall - 0.05)
        << "quantized one-shot recall " << recall
        << " fell below the float32 build's " << base_recall;
  }
}

// Mutation composes with compressed storage: the delta-shard wrapper
// rebuilds its inner structure through the same options, so a mutated
// quantized index answers bit-identically to a mutated float32 one.
TEST(QuantizedStorage, MutatedQuantizedIndexMatchesFloat32) {
  const conformance::Dataset data =
      std::move(conformance::datasets().front());
  const Matrix<float> extra = testutil::random_matrix(7, data.X.cols(), 909);
  const std::vector<index_t> extra_ids = {900, 901, 902, 903,
                                          904, 905, 906};
  const std::vector<index_t> removed = {3, 17, 902};

  for (const std::string& backend :
       {std::string("bruteforce"), std::string("rbc-exact")}) {
    IndexOptions options = conformance::suite_options();
    options.background_merge = false;
    auto reference = make_index(backend, options);
    options.storage = "int8";
    auto quantized = make_index(backend, options);
    for (Index* index : {reference.get(), quantized.get()}) {
      index->build(data.X);
      index->insert(extra, extra_ids);
      ASSERT_EQ(index->remove(removed), 3u);
    }
    SCOPED_TRACE(backend);
    EXPECT_TRUE(testutil::knn_equal(
        reference->knn_search({.queries = &data.Q, .k = 4}).knn,
        quantized->knn_search({.queries = &data.Q, .k = 4}).knn));
  }
}

// The capability matrix: quantized modes exist exactly where the Euclidean
// scan kernels run. Everything else rejects them with the uniform
// invalid_argument shape, and declares float32-only support.
TEST(QuantizedStorage, UnsupportedCombinationsFollowTheUniformContract) {
  const auto expect_rejected = [](const std::string& backend,
                                  IndexOptions options) {
    options.storage = "int8";
    try {
      (void)make_index(backend, options);
      FAIL() << backend << " accepted storage 'int8' under metric '"
             << options.metric << "'";
    } catch (const std::invalid_argument& e) {
      EXPECT_NE(std::string(e.what()).find("unsupported storage"),
                std::string::npos)
          << e.what();
    }
  };
  IndexOptions options = conformance::suite_options();
  // Scan backends: quantized tied to the L2 family.
  options.metric = "l1";
  for (const std::string& backend :
       {std::string("bruteforce"), std::string("rbc-exact"),
        std::string("rbc-oneshot"), std::string("sharded:bruteforce")})
    expect_rejected(backend, options);
  options.metric = "ip";
  expect_rejected("bruteforce", options);
  // Trees and device backends: float32 only, every metric.
  options.metric = "l2";
  for (const std::string& backend :
       {std::string("kdtree"), std::string("balltree"),
        std::string("covertree"), std::string("gpu-bf"),
        std::string("gpu-oneshot")})
    expect_rejected(backend, options);
  // Unknown names are caller errors too.
  options.storage = "int4";
  EXPECT_THROW((void)make_index("bruteforce", options),
               std::invalid_argument);

  // The declared capability matrix matches: quantized names present for
  // the scan backends, absent for the trees.
  const std::vector<std::string> quantized = {"float32", "fp16", "int8"};
  EXPECT_EQ(make_index("bruteforce")->info().supported_storage, quantized);
  EXPECT_EQ(make_index("rbc-exact")->info().supported_storage, quantized);
  EXPECT_EQ(make_index("sharded:rbc-exact", conformance::suite_options())
                ->info()
                .supported_storage,
            quantized);
  EXPECT_EQ(make_index("kdtree")->info().supported_storage,
            std::vector<std::string>{"float32"});
}

// The registry is the source of truth: every registered backend must have
// instantiated conformance tests. This walks gtest's own test registry, so
// replacing the ValuesIn source above with a hardcoded subset — the failure
// mode the old copy-pasted per-backend tests had — fails here.
TEST(ConformanceCoverage, EveryRegisteredBackendIsInstantiated) {
  std::set<std::string> instantiated;
  const ::testing::UnitTest& unit = *::testing::UnitTest::GetInstance();
  for (int i = 0; i < unit.total_test_suite_count(); ++i) {
    const ::testing::TestSuite& suite = *unit.GetTestSuite(i);
    if (std::string(suite.name()).find("ConformanceTest") == std::string::npos)
      continue;
    for (int j = 0; j < suite.total_test_count(); ++j)
      if (const char* param = suite.GetTestInfo(j)->value_param())
        instantiated.insert(param);
  }
  for (const std::string& backend : registered_backends()) {
    // value_param() is PrintToString of the std::string param — quoted.
    EXPECT_TRUE(instantiated.count('"' + backend + '"') == 1)
        << "registered backend '" << backend
        << "' has no instantiated conformance tests";
  }
}

// Same source-of-truth rule for the generic metric-space matrix: every
// backend that declares payload capability (non-empty supported_spaces)
// must have instantiated generic-space conformance tests — narrowing the
// ValuesIn source above to a hardcoded subset fails here.
TEST(ConformanceCoverage, EveryPayloadCapableBackendIsInstantiated) {
  std::set<std::string> instantiated;
  const ::testing::UnitTest& unit = *::testing::UnitTest::GetInstance();
  for (int i = 0; i < unit.total_test_suite_count(); ++i) {
    const ::testing::TestSuite& suite = *unit.GetTestSuite(i);
    if (std::string(suite.name()).find("GenericSpaceConformanceTest") ==
        std::string::npos)
      continue;
    for (int j = 0; j < suite.total_test_count(); ++j)
      if (const char* param = suite.GetTestInfo(j)->value_param())
        instantiated.insert(param);
  }
  for (const std::string& backend : registered_backends()) {
    const bool payload_capable =
        !make_index(backend, conformance::suite_options())
             ->info()
             .supported_spaces.empty();
    if (!payload_capable) continue;
    EXPECT_TRUE(instantiated.count('"' + backend + '"') == 1)
        << "backend '" << backend
        << "' declares supported_spaces but has no instantiated "
           "generic-space conformance tests";
  }
}

// Same source-of-truth rule for the mutation matrix: every backend that
// declares supports_mutation must have instantiated mutate-then-search
// coverage — a backend opting into mutation without the conformance lock
// (e.g. by instantiating the suite from a hardcoded subset) fails here.
TEST(ConformanceCoverage, EveryMutableBackendHasMutationTests) {
  std::set<std::string> instantiated;
  const ::testing::UnitTest& unit = *::testing::UnitTest::GetInstance();
  for (int i = 0; i < unit.total_test_suite_count(); ++i) {
    const ::testing::TestSuite& suite = *unit.GetTestSuite(i);
    if (std::string(suite.name()).find("ConformanceTest") == std::string::npos)
      continue;
    for (int j = 0; j < suite.total_test_count(); ++j) {
      const ::testing::TestInfo& info = *suite.GetTestInfo(j);
      if (std::string(info.name()).find("MutateThenSearch") ==
          std::string::npos)
        continue;
      if (const char* param = info.value_param()) instantiated.insert(param);
    }
  }
  for (const std::string& backend : registered_backends()) {
    const bool mutable_backend =
        make_index(backend, conformance::suite_options())
            ->info()
            .supports_mutation;
    if (!mutable_backend) continue;
    EXPECT_TRUE(instantiated.count('"' + backend + '"') == 1)
        << "backend '" << backend
        << "' declares supports_mutation but has no instantiated "
           "mutate-then-search conformance tests";
  }
}

}  // namespace
}  // namespace rbc
