// Instantiates the cross-backend conformance suite (tests/conformance.hpp)
// over every factory-registered backend, and proves the instantiation
// actually covers the registry — a backend registered without conformance
// coverage fails ConformanceCoverage, so the suite cannot silently rot.
#include <gtest/gtest.h>

#include <set>
#include <string>

#include "conformance.hpp"

namespace rbc {
namespace {

using conformance::ConformanceTest;

TEST_P(ConformanceTest, AnswersMatchTheReference) {
  conformance::check_answers(GetParam());
}

TEST_P(ConformanceTest, RequestErrorsFollowTheUnifiedContract) {
  conformance::check_error_contract(GetParam());
}

TEST_P(ConformanceTest, DegenerateInputsAreHandled) {
  conformance::check_degenerate_inputs(GetParam());
}

TEST_P(ConformanceTest, SerializeRoundTripIsExact) {
  conformance::check_serialize_roundtrip(GetParam());
}

TEST_P(ConformanceTest, ConcurrentSearchesAreConsistent) {
  conformance::check_concurrent_search(GetParam());
}

TEST_P(ConformanceTest, ShardedVariantsAreBitIdenticalToTheirInner) {
  conformance::check_sharded_bit_parity(GetParam());
}

INSTANTIATE_TEST_SUITE_P(AllRegisteredBackends, ConformanceTest,
                         ::testing::ValuesIn(registered_backends()),
                         [](const auto& info) {
                           return conformance::sanitized(info.param);
                         });

// The registry is the source of truth: every registered backend must have
// instantiated conformance tests. This walks gtest's own test registry, so
// replacing the ValuesIn source above with a hardcoded subset — the failure
// mode the old copy-pasted per-backend tests had — fails here.
TEST(ConformanceCoverage, EveryRegisteredBackendIsInstantiated) {
  std::set<std::string> instantiated;
  const ::testing::UnitTest& unit = *::testing::UnitTest::GetInstance();
  for (int i = 0; i < unit.total_test_suite_count(); ++i) {
    const ::testing::TestSuite& suite = *unit.GetTestSuite(i);
    if (std::string(suite.name()).find("ConformanceTest") == std::string::npos)
      continue;
    for (int j = 0; j < suite.total_test_count(); ++j)
      if (const char* param = suite.GetTestInfo(j)->value_param())
        instantiated.insert(param);
  }
  for (const std::string& backend : registered_backends()) {
    // value_param() is PrintToString of the std::string param — quoted.
    EXPECT_TRUE(instantiated.count('"' + backend + '"') == 1)
        << "registered backend '" << backend
        << "' has no instantiated conformance tests";
  }
}

}  // namespace
}  // namespace rbc
