// Instantiates the cross-backend conformance suite (tests/conformance.hpp)
// over every factory-registered backend, and proves the instantiation
// actually covers the registry — a backend registered without conformance
// coverage fails ConformanceCoverage, so the suite cannot silently rot.
#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "conformance.hpp"
#include "distance/dispatch.hpp"

namespace rbc {
namespace {

using conformance::ConformanceTest;

TEST_P(ConformanceTest, AnswersMatchTheReference) {
  conformance::check_answers(GetParam());
}

TEST_P(ConformanceTest, RequestErrorsFollowTheUnifiedContract) {
  conformance::check_error_contract(GetParam());
}

TEST_P(ConformanceTest, DegenerateInputsAreHandled) {
  conformance::check_degenerate_inputs(GetParam());
}

TEST_P(ConformanceTest, SerializeRoundTripIsExact) {
  conformance::check_serialize_roundtrip(GetParam());
}

TEST_P(ConformanceTest, ConcurrentSearchesAreConsistent) {
  conformance::check_concurrent_search(GetParam());
}

TEST_P(ConformanceTest, ShardedVariantsAreBitIdenticalToTheirInner) {
  conformance::check_sharded_bit_parity(GetParam());
}

TEST_P(ConformanceTest, MetricMatrixMatchesThePerMetricReference) {
  conformance::check_metric_matrix(GetParam());
}

TEST_P(ConformanceTest, UnsupportedMetricsFollowTheUniformContract) {
  conformance::check_unsupported_metric_contract(GetParam());
}

TEST_P(ConformanceTest, MetricSerializeRoundTripsPreserveTheMetric) {
  conformance::check_metric_serialize_roundtrip(GetParam());
}

TEST_P(ConformanceTest, ShardedCosineIsBitIdenticalToTheInner) {
  conformance::check_sharded_metric_parity(GetParam());
}

TEST_P(ConformanceTest, MutationEntryPointsFollowTheUniformContract) {
  conformance::check_mutation_contract(GetParam());
}

TEST_P(ConformanceTest, MutateThenSearchMatchesAScratchRebuild) {
  conformance::check_mutate_then_search(GetParam());
}

TEST_P(ConformanceTest, MutatedSerializeRoundTripIsExact) {
  conformance::check_mutated_serialize_roundtrip(GetParam());
}

INSTANTIATE_TEST_SUITE_P(AllRegisteredBackends, ConformanceTest,
                         ::testing::ValuesIn(registered_backends()),
                         [](const auto& info) {
                           return conformance::sanitized(info.param);
                         });

// The acceptance bar of the metric redesign: for every supported
// (backend, metric) pair of the dispatched backends, forcing each compiled
// ISA must return bit-identical results — the prefilter + scalar-re-measure
// contract, now holding per metric. Scoped to the backends that actually
// consult the dispatcher (trees never do; the sharded composite is pinned
// separately by its bit-parity checks).
TEST(MetricIsaParity, DispatchedBackendsAreBitIdenticalAcrossForcedIsas) {
  std::vector<dispatch::Isa> isas;
  for (const dispatch::Isa isa :
       {dispatch::Isa::kScalar, dispatch::Isa::kAvx2, dispatch::Isa::kAvx512})
    if (dispatch::isa_available(isa)) isas.push_back(isa);

  const conformance::Dataset data =
      std::move(conformance::datasets().front());
  const index_t k = 5;
  for (const std::string& backend : {std::string("bruteforce"),
                                     std::string("rbc-exact"),
                                     std::string("rbc-oneshot")}) {
    const std::vector<std::string> supported =
        make_index(backend, conformance::suite_options())
            ->info()
            .supported_metrics;
    for (const std::string& name : supported) {
      KnnResult reference;
      for (std::size_t i = 0; i < isas.size(); ++i) {
        SCOPED_TRACE(backend + " metric=" + name + " isa=" +
                     dispatch::isa_name(isas[i]));
        dispatch::force_isa(isas[i]);
        IndexOptions options = conformance::suite_options();
        options.metric = name;
        auto index = make_index(backend, options);
        index->build(data.X);  // built AND searched under the forced ISA
        KnnResult result = index->knn_search({.queries = &data.Q, .k = k}).knn;
        if (i == 0)
          reference = std::move(result);
        else
          EXPECT_TRUE(testutil::knn_equal(reference, result))
              << backend << "/" << name << " diverged between "
              << dispatch::isa_name(isas[0]) << " and "
              << dispatch::isa_name(isas[i]);
      }
    }
  }
  dispatch::clear_forced_isa();
}

// The registry is the source of truth: every registered backend must have
// instantiated conformance tests. This walks gtest's own test registry, so
// replacing the ValuesIn source above with a hardcoded subset — the failure
// mode the old copy-pasted per-backend tests had — fails here.
TEST(ConformanceCoverage, EveryRegisteredBackendIsInstantiated) {
  std::set<std::string> instantiated;
  const ::testing::UnitTest& unit = *::testing::UnitTest::GetInstance();
  for (int i = 0; i < unit.total_test_suite_count(); ++i) {
    const ::testing::TestSuite& suite = *unit.GetTestSuite(i);
    if (std::string(suite.name()).find("ConformanceTest") == std::string::npos)
      continue;
    for (int j = 0; j < suite.total_test_count(); ++j)
      if (const char* param = suite.GetTestInfo(j)->value_param())
        instantiated.insert(param);
  }
  for (const std::string& backend : registered_backends()) {
    // value_param() is PrintToString of the std::string param — quoted.
    EXPECT_TRUE(instantiated.count('"' + backend + '"') == 1)
        << "registered backend '" << backend
        << "' has no instantiated conformance tests";
  }
}

// Same source-of-truth rule for the mutation matrix: every backend that
// declares supports_mutation must have instantiated mutate-then-search
// coverage — a backend opting into mutation without the conformance lock
// (e.g. by instantiating the suite from a hardcoded subset) fails here.
TEST(ConformanceCoverage, EveryMutableBackendHasMutationTests) {
  std::set<std::string> instantiated;
  const ::testing::UnitTest& unit = *::testing::UnitTest::GetInstance();
  for (int i = 0; i < unit.total_test_suite_count(); ++i) {
    const ::testing::TestSuite& suite = *unit.GetTestSuite(i);
    if (std::string(suite.name()).find("ConformanceTest") == std::string::npos)
      continue;
    for (int j = 0; j < suite.total_test_count(); ++j) {
      const ::testing::TestInfo& info = *suite.GetTestInfo(j);
      if (std::string(info.name()).find("MutateThenSearch") ==
          std::string::npos)
        continue;
      if (const char* param = info.value_param()) instantiated.insert(param);
    }
  }
  for (const std::string& backend : registered_backends()) {
    const bool mutable_backend =
        make_index(backend, conformance::suite_options())
            ->info()
            .supports_mutation;
    if (!mutable_backend) continue;
    EXPECT_TRUE(instantiated.count('"' + backend + '"') == 1)
        << "backend '" << backend
        << "' declares supports_mutation but has no instantiated "
           "mutate-then-search conformance tests";
  }
}

}  // namespace
}  // namespace rbc
