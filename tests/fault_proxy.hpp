// FaultProxy: a deterministic in-process TCP proxy for fault-injection
// tests (tests/test_net_faults.cpp) and the fault_scaling benchmark sweep.
//
// The proxy listens on an OS-assigned loopback port and forwards every
// accepted connection to an upstream endpoint, applying one FaultPlan to
// the upstream->client byte stream:
//
//   client ──> FaultProxy(port stays stable) ──> upstream RbcServer
//                   │
//                   └── kDelay / kReset / kTruncate / kCorrupt / kBlackhole
//
// Why a byte-level proxy rather than mocking the client: the faults hit the
// real sockets the production stack reads, so a reset mid-frame exercises
// RbcClient's actual EOF/ECONNRESET handling and NetRouter's real failover
// path, not a simulation of them. The proxy's port outlives upstream
// crashes — kill the backend, restart it on a new port, re-point with
// set_upstream(), and the router's endpoint never changes (exactly how a
// stable service address fronts churning processes).
//
// Determinism: faults trigger on exact byte offsets (after_bytes), never on
// timing races. A seeded per-connection schedule (set_schedule) assigns the
// n-th accepted connection a plan chosen by splitmix64(seed ^ n) — the same
// seed always yields the same fault sequence, so a chaos run is replayable.
//
// Thread-safety: set_plan/set_upstream/set_schedule/drop_connections may be
// called from any thread while traffic flows; plans are snapshotted per
// forwarded chunk.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace rbc::testing {

struct FaultPlan {
  enum class Mode : std::uint8_t {
    kNone,       ///< forward untouched
    kDelay,      ///< sleep delay_ms before each upstream->client chunk
    kReset,      ///< RST the client after after_bytes of response data
    kTruncate,   ///< clean FIN after after_bytes (mid-frame truncation)
    kCorrupt,    ///< XOR 0xFF the response byte at offset after_bytes
    kBlackhole,  ///< swallow all bytes, both directions, close nothing
  };
  Mode mode = Mode::kNone;
  std::uint64_t after_bytes = 0;  ///< response-byte offset for the trigger
  std::uint32_t delay_ms = 0;     ///< kDelay: added latency per chunk
};

class FaultProxy {
 public:
  /// Starts listening immediately; upstream is only contacted per accepted
  /// connection, so it may be down (or not yet started) at construction.
  FaultProxy(std::string upstream_host, std::uint16_t upstream_port);
  ~FaultProxy();

  FaultProxy(const FaultProxy&) = delete;
  FaultProxy& operator=(const FaultProxy&) = delete;

  /// The stable front port clients connect to.
  std::uint16_t port() const { return port_; }

  /// Replaces the active plan; applies to bytes forwarded from now on
  /// (including already-open connections) and clears any schedule.
  void set_plan(FaultPlan plan);

  /// Seeded schedule: accepted connection n runs menu[splitmix64(seed ^ n)
  /// % menu.size()] for its whole lifetime. Deterministic and replayable.
  void set_schedule(std::vector<FaultPlan> menu, std::uint64_t seed);

  /// Re-points future connections at a restarted upstream.
  void set_upstream(std::uint16_t upstream_port);

  /// Hard-kills every live proxied connection (RST to the client): an
  /// instantaneous network partition.
  void drop_connections();

  std::uint64_t connections_accepted() const;
  std::uint64_t faults_injected() const;

 private:
  struct Conn;

  void accept_loop();
  void start_conn(int client_fd);
  void pump_client_to_upstream(const std::shared_ptr<Conn>& conn);
  void pump_upstream_to_client(const std::shared_ptr<Conn>& conn);
  FaultPlan plan_for(const Conn& conn);

  mutable std::mutex mutex_;
  std::string upstream_host_;
  std::uint16_t upstream_port_ = 0;
  FaultPlan plan_;
  std::vector<FaultPlan> schedule_;
  std::uint64_t schedule_seed_ = 0;
  bool scheduled_ = false;

  int listen_fd_ = -1;
  std::uint16_t port_ = 0;
  bool stopping_ = false;
  std::uint64_t accepted_ = 0;
  std::uint64_t faults_ = 0;
  std::vector<std::shared_ptr<Conn>> conns_;
  std::thread accept_thread_;
};

}  // namespace rbc::testing
