#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "common/rng.hpp"
#include "distance/edit_distance.hpp"

namespace rbc {
namespace {

TEST(EditDistance, KnownValues) {
  EXPECT_EQ(edit_distance("", ""), 0u);
  EXPECT_EQ(edit_distance("abc", ""), 3u);
  EXPECT_EQ(edit_distance("", "abc"), 3u);
  EXPECT_EQ(edit_distance("abc", "abc"), 0u);
  EXPECT_EQ(edit_distance("kitten", "sitting"), 3u);
  EXPECT_EQ(edit_distance("flaw", "lawn"), 2u);
  EXPECT_EQ(edit_distance("intention", "execution"), 5u);
  EXPECT_EQ(edit_distance("a", "b"), 1u);
  EXPECT_EQ(edit_distance("ab", "ba"), 2u);
}

std::string random_string(Rng& rng, index_t max_len) {
  const index_t len = rng.uniform_index(max_len + 1);
  std::string s(len, 'a');
  for (auto& ch : s) ch = static_cast<char>('a' + rng.uniform_index(4));
  return s;
}

TEST(EditDistance, MetricAxiomsOnRandomStrings) {
  Rng rng(42);
  for (int trial = 0; trial < 200; ++trial) {
    const std::string a = random_string(rng, 20);
    const std::string b = random_string(rng, 20);
    const std::string c = random_string(rng, 20);
    const index_t ab = edit_distance(a, b);
    const index_t ba = edit_distance(b, a);
    const index_t bc = edit_distance(b, c);
    const index_t ac = edit_distance(a, c);
    EXPECT_EQ(ab, ba);                      // symmetry
    EXPECT_EQ(edit_distance(a, a), 0u);     // identity
    EXPECT_LE(ac, ab + bc);                 // triangle inequality
    if (a != b) EXPECT_GT(ab, 0u);          // positivity
  }
}

TEST(EditDistance, BoundedByLongerLength) {
  Rng rng(7);
  for (int trial = 0; trial < 100; ++trial) {
    const std::string a = random_string(rng, 15);
    const std::string b = random_string(rng, 15);
    EXPECT_LE(edit_distance(a, b), std::max(a.size(), b.size()));
    EXPECT_GE(edit_distance(a, b),
              a.size() > b.size() ? a.size() - b.size() : b.size() - a.size());
  }
}

TEST(EditDistanceBanded, MatchesFullWhenWithinBand) {
  Rng rng(11);
  for (int trial = 0; trial < 300; ++trial) {
    const std::string a = random_string(rng, 16);
    const std::string b = random_string(rng, 16);
    const index_t full = edit_distance(a, b);
    for (const index_t band : {index_t{0}, index_t{1}, index_t{3}, index_t{8},
                               index_t{20}}) {
      const index_t banded = edit_distance_banded(a, b, band);
      if (full <= band) {
        EXPECT_EQ(banded, full) << "a=" << a << " b=" << b << " band=" << band;
      } else {
        EXPECT_EQ(banded, band + 1)
            << "a=" << a << " b=" << b << " band=" << band;
      }
    }
  }
}

TEST(EditDistanceBanded, LengthGapShortCircuit) {
  EXPECT_EQ(edit_distance_banded("aaaaaaaaaa", "a", 3), 4u);
  EXPECT_EQ(edit_distance_banded("abcdefgh", "abc", 5), 5u);
}

TEST(StringSpace, AdapterBasics) {
  StringSpace space({"cat", "cart", "dog"});
  EXPECT_EQ(space.size(), 3u);
  EXPECT_EQ(space[1], "cart");
  EXPECT_DOUBLE_EQ(space.distance(space[0], space[1]), 1.0);
  EXPECT_DOUBLE_EQ(space.distance(space[0], space[2]), 3.0);
}

}  // namespace
}  // namespace rbc
