// Corrupt-file regression tests for rbc::load_index's magic dispatch: a
// truncated, bit-flipped, or length-corrupted stream must fail with a clear
// std::runtime_error — never UB, an abort, or a garbage-length allocation.
// Covers every serializable registered backend (including the sharded
// composite, whose loader recurses through load_index per shard).
#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "api/api.hpp"
#include "rbc/serialize_io.hpp"
#include "test_util.hpp"

namespace rbc {
namespace {

/// Serialized bytes of a small built index for the given backend, or empty
/// when the backend does not support save.
std::string saved_bytes(const std::string& backend) {
  auto index = make_index(backend, {.rbc = {.seed = 51}, .num_shards = 3});
  index->build(testutil::clustered_matrix(120, 6, 4, 52));
  if (!index->info().supports_save) return {};
  std::stringstream stream;
  index->save(stream);
  return stream.str();
}

TEST(CorruptFiles, TruncationAtEveryRegionThrowsCleanly) {
  for (const std::string& backend : registered_backends()) {
    const std::string bytes = saved_bytes(backend);
    if (bytes.empty()) continue;
    // Cut inside the magic, the header, and the payload, plus one byte
    // short of complete — each must throw std::runtime_error (and only
    // that), leaving no UB for the driver to hit.
    for (const std::size_t cut :
         {std::size_t{0}, std::size_t{2}, std::size_t{7}, bytes.size() / 3,
          bytes.size() / 2, bytes.size() - 1}) {
      SCOPED_TRACE(backend + " truncated to " + std::to_string(cut) +
                   " of " + std::to_string(bytes.size()) + " bytes");
      std::stringstream stream(bytes.substr(0, cut));
      EXPECT_THROW((void)load_index(stream), std::runtime_error);
    }
    // The untruncated bytes still load (the cuts failed for the right
    // reason).
    std::stringstream intact(bytes);
    EXPECT_NO_THROW((void)load_index(intact)) << backend;
  }
}

TEST(CorruptFiles, UnknownMagicIsRejectedWithAClearError) {
  std::stringstream garbage("definitely not an rbc index file");
  try {
    (void)load_index(garbage);
    FAIL() << "expected std::runtime_error";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("magic"), std::string::npos)
        << "error should mention the magic: " << e.what();
  }

  std::stringstream empty;
  EXPECT_THROW((void)load_index(empty), std::runtime_error);

  std::stringstream two_bytes("ab");
  EXPECT_THROW((void)load_index(two_bytes), std::runtime_error);
}

TEST(CorruptFiles, GarbageLengthFieldFailsBeforeAllocating) {
  // A valid magic followed by an absurd matrix header: the loader must
  // reject the claimed size against the actual stream length instead of
  // attempting a multi-gigabyte (or overflowing) allocation.
  std::stringstream stream;
  io::write_pod(stream, io::kMagicBruteForce);
  io::write_pod(stream, io::kFormatVersion);
  io::write_pod(stream, index_t{0xFFFFFFFFu});  // rows
  io::write_pod(stream, index_t{0xFFFFFFFFu});  // cols
  EXPECT_THROW((void)load_index(stream), std::runtime_error);
}

TEST(CorruptFiles, ShardedStreamWithGarbageHeaderCountsFailsBeforeAllocating) {
  // Bit-flipped num_shards / row-count fields must be rejected against the
  // actual stream length, not fed to the partition-table allocation.
  {
    std::stringstream stream;
    io::write_pod(stream, io::kMagicSharded);
    io::write_pod(stream, io::kFormatVersion);
    io::write_string(stream, "bruteforce");
    io::write_string(stream, "contiguous");
    io::write_pod(stream, index_t{0x7FFFFFFFu});  // num_shards
    EXPECT_THROW((void)load_index(stream), std::runtime_error);
  }
  {
    std::stringstream stream;
    io::write_pod(stream, io::kMagicSharded);
    io::write_pod(stream, io::kFormatVersion);
    io::write_string(stream, "bruteforce");
    io::write_string(stream, "contiguous");
    io::write_pod(stream, index_t{2});            // num_shards
    io::write_pod(stream, index_t{0xFFFFFFFFu});  // rows
    io::write_pod(stream, index_t{4});            // dim
    io::write_pod(stream, std::uint64_t{2});      // stored shard count
    EXPECT_THROW((void)load_index(stream), std::runtime_error);
  }
}

TEST(CorruptFiles, ShardedStreamWithCorruptInnerNameThrows) {
  // A sharded header whose inner-backend name is garbage is a corrupt
  // file, reported as runtime_error (not the factory's invalid_argument).
  std::stringstream stream;
  io::write_pod(stream, io::kMagicSharded);
  io::write_pod(stream, io::kFormatVersion);
  io::write_string(stream, "no-such-backend");
  io::write_string(stream, "contiguous");
  io::write_pod(stream, index_t{2});  // num_shards
  EXPECT_THROW((void)load_index(stream), std::runtime_error);
}

TEST(CorruptFiles, FlippedMagicByteIsRejected) {
  const std::string bytes = saved_bytes("rbc-exact");
  ASSERT_FALSE(bytes.empty());
  std::string flipped = bytes;
  flipped[0] = static_cast<char>(flipped[0] ^ 0x5A);
  std::stringstream stream(flipped);
  EXPECT_THROW((void)load_index(stream), std::runtime_error);
}

}  // namespace
}  // namespace rbc
