// Corrupt-file regression tests for rbc::load_index's magic dispatch: a
// truncated, bit-flipped, or length-corrupted stream must fail with a clear
// std::runtime_error — never UB, an abort, or a garbage-length allocation.
// Covers every serializable registered backend (including the sharded
// composite, whose loader recurses through load_index per shard).
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "api/api.hpp"
#include "metricspace/dataset.hpp"
#include "rbc/rbc_exact.hpp"
#include "rbc/serialize_io.hpp"
#include "test_util.hpp"

namespace rbc {
namespace {

/// Serialized bytes of a small built index for the given backend, or empty
/// when the backend does not support save.
std::string saved_bytes(const std::string& backend) {
  auto index = make_index(backend, {.rbc = {.seed = 51}, .num_shards = 3});
  index->build(testutil::clustered_matrix(120, 6, 4, 52));
  if (!index->info().supports_save) return {};
  std::stringstream stream;
  index->save(stream);
  return stream.str();
}

TEST(CorruptFiles, TruncationAtEveryRegionThrowsCleanly) {
  for (const std::string& backend : registered_backends()) {
    const std::string bytes = saved_bytes(backend);
    if (bytes.empty()) continue;
    // Cut inside the magic, the header, and the payload, plus one byte
    // short of complete — each must throw std::runtime_error (and only
    // that), leaving no UB for the driver to hit.
    for (const std::size_t cut :
         {std::size_t{0}, std::size_t{2}, std::size_t{7}, bytes.size() / 3,
          bytes.size() / 2, bytes.size() - 1}) {
      SCOPED_TRACE(backend + " truncated to " + std::to_string(cut) +
                   " of " + std::to_string(bytes.size()) + " bytes");
      std::stringstream stream(bytes.substr(0, cut));
      EXPECT_THROW((void)load_index(stream), std::runtime_error);
    }
    // The untruncated bytes still load (the cuts failed for the right
    // reason).
    std::stringstream intact(bytes);
    EXPECT_NO_THROW((void)load_index(intact)) << backend;
  }
}

TEST(CorruptFiles, UnknownMagicIsRejectedWithAClearError) {
  std::stringstream garbage("definitely not an rbc index file");
  try {
    (void)load_index(garbage);
    FAIL() << "expected std::runtime_error";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("magic"), std::string::npos)
        << "error should mention the magic: " << e.what();
  }

  std::stringstream empty;
  EXPECT_THROW((void)load_index(empty), std::runtime_error);

  std::stringstream two_bytes("ab");
  EXPECT_THROW((void)load_index(two_bytes), std::runtime_error);
}

TEST(CorruptFiles, GarbageLengthFieldFailsBeforeAllocating) {
  // A valid magic followed by an absurd matrix header: the loader must
  // reject the claimed size against the actual stream length instead of
  // attempting a multi-gigabyte (or overflowing) allocation.
  std::stringstream stream;
  io::write_pod(stream, io::kMagicBruteForce);
  io::write_pod(stream, io::kFormatVersion);
  io::write_pod(stream, index_t{0xFFFFFFFFu});  // rows
  io::write_pod(stream, index_t{0xFFFFFFFFu});  // cols
  EXPECT_THROW((void)load_index(stream), std::runtime_error);
}

TEST(CorruptFiles, ShardedStreamWithGarbageHeaderCountsFailsBeforeAllocating) {
  // Bit-flipped num_shards / row-count fields must be rejected against the
  // actual stream length, not fed to the partition-table allocation.
  {
    std::stringstream stream;
    io::write_pod(stream, io::kMagicSharded);
    io::write_pod(stream, io::kFormatVersion);
    io::write_string(stream, "bruteforce");
    io::write_string(stream, "contiguous");
    io::write_pod(stream, index_t{0x7FFFFFFFu});  // num_shards
    EXPECT_THROW((void)load_index(stream), std::runtime_error);
  }
  {
    std::stringstream stream;
    io::write_pod(stream, io::kMagicSharded);
    io::write_pod(stream, io::kFormatVersion);
    io::write_string(stream, "bruteforce");
    io::write_string(stream, "contiguous");
    io::write_pod(stream, index_t{2});            // num_shards
    io::write_pod(stream, index_t{0xFFFFFFFFu});  // rows
    io::write_pod(stream, index_t{4});            // dim
    io::write_pod(stream, std::uint64_t{2});      // stored shard count
    EXPECT_THROW((void)load_index(stream), std::runtime_error);
  }
}

TEST(CorruptFiles, ShardedStreamWithCorruptInnerNameThrows) {
  // A sharded header whose inner-backend name is garbage is a corrupt
  // file, reported as runtime_error (not the factory's invalid_argument).
  std::stringstream stream;
  io::write_pod(stream, io::kMagicSharded);
  io::write_pod(stream, io::kFormatVersion);
  io::write_string(stream, "no-such-backend");
  io::write_string(stream, "contiguous");
  io::write_pod(stream, index_t{2});  // num_shards
  EXPECT_THROW((void)load_index(stream), std::runtime_error);
}

TEST(CorruptFiles, UnknownMetricTagIsRejectedAsCorruption) {
  // A version-2 header whose metric tag is not in the registry is file
  // corruption: std::runtime_error (never the factory's invalid_argument,
  // which is reserved for caller errors).
  {
    std::stringstream stream;
    io::write_pod(stream, io::kMagicBruteForce);
    io::write_metric_header(stream, "no-such-metric");
    io::write_pod(stream, index_t{1});  // rows
    io::write_pod(stream, index_t{1});  // cols
    io::write_pod(stream, 1.0f);
    try {
      (void)load_index(stream);
      FAIL() << "expected std::runtime_error";
    } catch (const std::runtime_error& e) {
      EXPECT_NE(std::string(e.what()).find("metric"), std::string::npos)
          << "error should mention the metric tag: " << e.what();
    }
  }
  {
    // Tree formats share the header helper; kdtree declares l2/cosine only,
    // so a stored "l1" tag is corruption for it too.
    std::stringstream stream;
    io::write_pod(stream, io::kMagicKdTree);
    io::write_metric_header(stream, "l1");
    io::write_pod(stream, index_t{16});  // leaf_size
    io::write_pod(stream, index_t{1});   // rows
    io::write_pod(stream, index_t{1});   // cols
    io::write_pod(stream, 1.0f);
    EXPECT_THROW((void)load_index(stream), std::runtime_error);
  }
  {
    // Sharded header with a garbage metric tag.
    std::stringstream stream;
    io::write_pod(stream, io::kMagicSharded);
    io::write_metric_header(stream, "no-such-metric");
    io::write_string(stream, "bruteforce");
    io::write_string(stream, "contiguous");
    io::write_pod(stream, index_t{2});
    EXPECT_THROW((void)load_index(stream), std::runtime_error);
  }
  {
    // An unknown (version 6 — one past the mutable-storage v5) header is
    // rejected, not misparsed as some future format.
    std::stringstream stream;
    io::write_pod(stream, io::kMagicBruteForce);
    io::write_pod(stream, std::uint32_t{6});
    EXPECT_THROW((void)load_index(stream), std::runtime_error);
  }
}

TEST(CorruptFiles, QuantizedIndexesRoundTripThroughSaveAndLoad) {
  // Compressed-storage indexes persist their storage tag (format v5 through
  // make_index's mutable wrapper, v4 for raw streams) and their code store;
  // a reloaded index answers identically and reports the same storage.
  const Matrix<float> X = testutil::clustered_matrix(120, 6, 4, 70);
  const Matrix<float> Q = testutil::random_matrix(5, 6, 71);
  for (const std::string backend :
       {"bruteforce", "rbc-exact", "rbc-oneshot", "sharded:rbc-exact"}) {
    for (const std::string storage : {"fp16", "int8"}) {
      SCOPED_TRACE(backend + " / " + storage);
      IndexOptions options{.rbc = {.seed = 72}, .num_shards = 3};
      options.storage = storage;
      auto index = make_index(backend, options);
      index->build(X);
      std::stringstream stream;
      index->save(stream);
      const auto restored = load_index(stream);
      EXPECT_EQ(restored->info().storage, storage);
      EXPECT_EQ(restored->info().size, X.rows());
      EXPECT_TRUE(testutil::knn_equal(
          index->knn_search({.queries = &Q, .k = 4}).knn,
          restored->knn_search({.queries = &Q, .k = 4}).knn));
    }
  }
  // Cosine composes with storage through the same normalized-rows path.
  {
    IndexOptions options{.metric = "cosine"};
    options.storage = "int8";
    auto index = make_index("bruteforce", options);
    index->build(X);
    std::stringstream stream;
    index->save(stream);
    const auto restored = load_index(stream);
    EXPECT_EQ(restored->info().metric, "cosine");
    EXPECT_EQ(restored->info().storage, "int8");
    EXPECT_TRUE(testutil::knn_equal(
        index->knn_search({.queries = &Q, .k = 3}).knn,
        restored->knn_search({.queries = &Q, .k = 3}).knn));
  }
}

/// A hand-written raw (non-mutable) version-4 bruteforce stream: magic,
/// v4 header (metric + storage tags), float matrix, quantized store —
/// exactly the layout the raw backend's save() emits.
std::string raw_v4_bruteforce_bytes(const Matrix<float>& X,
                                    quant::Storage mode) {
  std::stringstream stream;
  io::write_pod(stream, io::kMagicBruteForce);
  io::write_storage_header(stream, "l2", quant::name(mode));
  io::write_matrix(stream, X);
  io::write_quantized_store(stream, quant::quantize(mode, X));
  return stream.str();
}

TEST(CorruptFiles, RawVersion4StreamsLoadAndRejectTruncatedStores) {
  const Matrix<float> X = testutil::clustered_matrix(80, 5, 3, 73);
  const Matrix<float> Q = testutil::random_matrix(4, 5, 74);
  auto fresh = make_index("bruteforce");
  fresh->build(X);
  const KnnResult expected = fresh->knn_search({.queries = &Q, .k = 3}).knn;

  for (const quant::Storage mode :
       {quant::Storage::kFp16, quant::Storage::kInt8}) {
    const std::string bytes = raw_v4_bruteforce_bytes(X, mode);
    SCOPED_TRACE(quant::name(mode));
    // The intact stream loads, reports its storage, and (exact re-measure)
    // answers bit-identically to the float32 index.
    std::stringstream intact(bytes);
    const auto index = load_index(intact);
    EXPECT_EQ(index->info().storage, quant::name(mode));
    EXPECT_TRUE(testutil::knn_equal(
        expected, index->knn_search({.queries = &Q, .k = 3}).knn));

    // Every cut inside the appended quantized-store region — the bytes a
    // crash mid-save would truncate — throws cleanly.
    std::stringstream prefix_stream;
    io::write_pod(prefix_stream, io::kMagicBruteForce);
    io::write_storage_header(prefix_stream, "l2", quant::name(mode));
    io::write_matrix(prefix_stream, X);
    const std::size_t prefix = prefix_stream.str().size();
    ASSERT_GT(bytes.size(), prefix);
    const std::size_t tail = bytes.size() - prefix;
    for (const std::size_t cut :
         {prefix, prefix + tail / 4, prefix + tail / 2, bytes.size() - 1}) {
      SCOPED_TRACE("truncated to " + std::to_string(cut) + " of " +
                   std::to_string(bytes.size()) + " bytes");
      std::stringstream stream(bytes.substr(0, cut));
      EXPECT_THROW((void)load_index(stream), std::runtime_error);
    }
  }
}

TEST(CorruptFiles, CorruptStorageTagsAndStoreFieldsAreRejected) {
  const Matrix<float> X = testutil::clustered_matrix(40, 4, 3, 75);
  // Raw v4 header carrying an unregistered storage tag: corruption
  // (runtime_error naming the tag), never the factory's invalid_argument.
  {
    std::stringstream stream;
    io::write_pod(stream, io::kMagicBruteForce);
    io::write_pod(stream, io::kFormatVersionStorage);
    io::write_string(stream, "l2");
    io::write_string(stream, "int4");
    io::write_matrix(stream, X);
    try {
      (void)load_index(stream);
      FAIL() << "expected std::runtime_error";
    } catch (const std::runtime_error& e) {
      EXPECT_NE(std::string(e.what()).find("storage"), std::string::npos)
          << "error should mention the storage tag: " << e.what();
    }
  }
  // Mutable v5 header with an unknown storage tag.
  {
    std::stringstream stream;
    io::write_pod(stream, io::kMagicBruteForce);
    io::write_pod(stream, io::kFormatVersionMutableStorage);
    io::write_string(stream, "l2");
    io::write_string(stream, "int4");
    EXPECT_THROW((void)load_index(stream), std::runtime_error);
  }
  // A store whose mode byte is garbage fails in read_quantized_store.
  {
    std::string bytes = raw_v4_bruteforce_bytes(X, quant::Storage::kInt8);
    std::stringstream prefix;
    io::write_pod(prefix, io::kMagicBruteForce);
    io::write_storage_header(prefix, "l2", "int8");
    io::write_matrix(prefix, X);
    bytes[prefix.str().size()] = 0x7F;  // first byte of the store's mode
    std::stringstream stream(bytes);
    EXPECT_THROW((void)load_index(stream), std::runtime_error);
  }
  // A store whose shape disagrees with the matrix (one row short) is
  // rejected instead of silently scanning the wrong geometry.
  {
    const Matrix<float> X_short = testutil::clustered_matrix(39, 4, 3, 75);
    std::stringstream stream;
    io::write_pod(stream, io::kMagicBruteForce);
    io::write_storage_header(stream, "l2", "int8");
    io::write_matrix(stream, X);
    io::write_quantized_store(stream,
                              quant::quantize(quant::Storage::kInt8, X_short));
    EXPECT_THROW((void)load_index(stream), std::runtime_error);
  }
}

TEST(CorruptFiles, TruncatedMutableDeltaAndTombstoneSectionsThrowCleanly) {
  // Version-3 streams append the delta rows, delta ids, and tombstone list
  // after the main section. Save the same logical index twice — once
  // compacted (clean tail) and once with a live delta + tombstones — so
  // every cut between the two lengths provably lands inside the mutation
  // sections, the exact bytes a crash mid-append would truncate.
  const Matrix<float> X = testutil::clustered_matrix(40, 6, 4, 55);
  IndexOptions options{.rbc = {.seed = 56}};
  options.max_delta = 64;  // keep the delta unmerged across save
  options.background_merge = false;

  auto index = make_index("bruteforce", options);
  index->build(X);
  Matrix<float> extra = testutil::random_matrix(5, 6, 57);
  index->insert(extra, std::vector<index_t>{100, 101, 102, 103, 104});
  EXPECT_EQ(index->remove(std::vector<index_t>{3, 17, 102}), 3u);
  ASSERT_GT(index->info().delta_rows, 0u);
  ASSERT_GT(index->info().tombstones, 0u);

  std::stringstream mutated_stream;
  index->save(mutated_stream);
  const std::string mutated = mutated_stream.str();
  index->compact();
  std::stringstream clean_stream;
  index->save(clean_stream);
  const std::size_t clean_size = clean_stream.str().size();
  ASSERT_GT(mutated.size(), clean_size);

  const std::size_t tail = mutated.size() - clean_size;
  for (const std::size_t cut :
       {clean_size, clean_size + tail / 4, clean_size + tail / 2,
        mutated.size() - 1}) {
    SCOPED_TRACE("truncated to " + std::to_string(cut) + " of " +
                 std::to_string(mutated.size()) + " bytes");
    std::stringstream stream(mutated.substr(0, cut));
    EXPECT_THROW((void)load_index(stream), std::runtime_error);
  }
  // The untruncated mutated stream still loads with its delta and
  // tombstones intact (the cuts above failed for the right reason).
  std::stringstream intact(mutated);
  // Removing delta-resident id 102 dropped its row in place; removing main
  // ids 3 and 17 tombstoned them — so the tail holds 4 delta rows + 2
  // tombstones.
  const auto restored = load_index(intact);
  EXPECT_EQ(restored->info().delta_rows, 4u);
  EXPECT_EQ(restored->info().tombstones, 2u);
  EXPECT_EQ(restored->info().size, 42u);
}

TEST(CorruptFiles, LegacyVersion1FilesLoadAsL2) {
  const Matrix<float> X = testutil::clustered_matrix(60, 5, 3, 53);
  const Matrix<float> Q = testutil::random_matrix(4, 5, 54);

  // Hand-written pre-metric bruteforce file: magic, version 1, matrix.
  {
    std::stringstream stream;
    io::write_pod(stream, io::kMagicBruteForce);
    io::write_pod(stream, io::kFormatVersion);
    io::write_matrix(stream, X);
    const auto index = load_index(stream);
    EXPECT_EQ(index->info().metric, "l2");
    EXPECT_EQ(index->info().size, X.rows());
    auto fresh = make_index("bruteforce");
    fresh->build(X);
    EXPECT_TRUE(testutil::knn_equal(
        fresh->knn_search({.queries = &Q, .k = 3}).knn,
        index->knn_search({.queries = &Q, .k = 3}).knn));
  }
  // Pre-metric kdtree file: magic, version 1, leaf_size, matrix.
  {
    std::stringstream stream;
    io::write_pod(stream, io::kMagicKdTree);
    io::write_pod(stream, io::kFormatVersion);
    io::write_pod(stream, index_t{16});
    io::write_matrix(stream, X);
    const auto index = load_index(stream);
    EXPECT_EQ(index->info().backend, "kdtree");
    EXPECT_EQ(index->info().metric, "l2");
  }
  // A concrete-class RbcExactIndex stream (its own version-1 format) must
  // still load through the wrapper's legacy rewind path as "l2".
  {
    RbcExactIndex<Euclidean> concrete;
    concrete.build(X, {.num_reps = 8, .seed = 5});
    std::stringstream stream;
    concrete.save(stream);
    const auto index = load_index(stream);
    EXPECT_EQ(index->info().backend, "rbc-exact");
    EXPECT_EQ(index->info().metric, "l2");
    auto fresh = make_index("bruteforce");
    fresh->build(X);
    EXPECT_TRUE(testutil::knn_equal(
        fresh->knn_search({.queries = &Q, .k = 3}).knn,
        index->knn_search({.queries = &Q, .k = 3}).knn));
  }
  // Pre-metric sharded header over modern inner streams: the composite's
  // legacy path defaults the metric to l2 and still validates the shards.
  {
    auto sharded = make_index("sharded:bruteforce", {.num_shards = 2});
    sharded->build(X);
    std::stringstream modern;
    sharded->save(modern);
    // Rewrite the header: magic + v1 (no metric tag), then splice the rest
    // of the modern stream (inner name onward) unchanged.
    const std::string bytes = modern.str();
    const std::size_t metric_header =
        sizeof(io::kMagicSharded) + sizeof(io::kFormatVersionMetric) +
        sizeof(std::uint64_t) + std::string("l2").size();
    std::stringstream legacy;
    io::write_pod(legacy, io::kMagicSharded);
    io::write_pod(legacy, io::kFormatVersion);
    legacy << bytes.substr(metric_header);
    const auto index = load_index(legacy);
    EXPECT_EQ(index->info().backend, "sharded:bruteforce");
    EXPECT_EQ(index->info().metric, "l2");
    EXPECT_EQ(index->info().size, X.rows());
  }
}

// ------------------------------------------ payload (v6) corrupt fixtures --
// The generic metric-space format: kMagicPayload, version 6, host backend
// tag, metric-space tag, RbcParams, then the serialized dataset (kind tag +
// store). Each fixture forges the bytes a bit-flip or torn write would
// produce and pins the clean runtime_error the loader must answer with.

/// Serialized bytes of a small payload index (strings under "edit").
std::string saved_payload_bytes(const std::string& backend) {
  std::vector<std::string> words;
  for (int i = 0; i < 40; ++i)
    words.push_back("word" + std::to_string(i % 13) + std::to_string(i));
  IndexOptions options{.rbc = {.seed = 58}, .num_shards = 3};
  options.metric = "edit";
  auto index = make_index(backend, options);
  index->build_payload(metricspace::make_string_dataset(std::move(words)));
  std::stringstream stream;
  index->save(stream);
  return stream.str();
}

/// The v6 header bytes up to (and excluding) the dataset payload.
void write_payload_header(std::ostream& os, const std::string& backend,
                          const std::string& metric) {
  io::write_pod(os, io::kMagicPayload);
  io::write_pod(os, io::kFormatVersionPayload);
  io::write_string(os, backend);
  io::write_string(os, metric);
  io::write_pod(os, RbcParams{});
}

TEST(CorruptFiles, PayloadTruncationAtEveryRegionThrowsCleanly) {
  for (const std::string backend :
       {"bruteforce", "rbc-exact", "rbc-oneshot", "sharded:rbc-exact"}) {
    const std::string bytes = saved_payload_bytes(backend);
    ASSERT_FALSE(bytes.empty()) << backend;
    for (const std::size_t cut :
         {std::size_t{0}, std::size_t{2}, std::size_t{7}, bytes.size() / 3,
          bytes.size() / 2, bytes.size() - 1}) {
      SCOPED_TRACE(backend + " truncated to " + std::to_string(cut) + " of " +
                   std::to_string(bytes.size()) + " bytes");
      std::stringstream stream(bytes.substr(0, cut));
      EXPECT_THROW((void)load_index(stream), std::runtime_error);
    }
    std::stringstream intact(bytes);
    const auto restored = load_index(intact);
    EXPECT_EQ(restored->info().backend, backend);
    EXPECT_EQ(restored->info().metric, "edit");
    EXPECT_TRUE(restored->info().payload) << backend;
  }
}

TEST(CorruptFiles, PayloadTableWithGarbageCountFailsBeforeAllocating) {
  // A corrupt item count must be rejected against the remaining stream
  // length (8 length-bytes per item is the floor) before the table is
  // allocated for it.
  std::stringstream stream;
  write_payload_header(stream, "bruteforce", "edit");
  io::write_string(stream, "strings");
  io::write_pod(stream, std::uint64_t{1} << 27);  // items that aren't there
  try {
    (void)load_index(stream);
    FAIL() << "expected std::runtime_error";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("payload table"), std::string::npos)
        << "error should mention the payload table: " << e.what();
  }
  // A count beyond kMaxPayloadItems is rejected by the absolute cap even
  // if a huge stream could cover it.
  std::stringstream absurd;
  write_payload_header(absurd, "bruteforce", "edit");
  io::write_string(absurd, "strings");
  io::write_pod(absurd, std::uint64_t{1} << 40);
  EXPECT_THROW((void)load_index(absurd), std::runtime_error);
}

TEST(CorruptFiles, OversizedStringLengthIsRejectedAsCorruption) {
  // One stored string whose length field exceeds kMaxPayloadBytes: the
  // loader must refuse the allocation, naming the oversized length.
  std::stringstream stream;
  write_payload_header(stream, "bruteforce", "edit");
  io::write_string(stream, "strings");
  io::write_pod(stream, std::uint64_t{2});
  io::write_string(stream, "fine");
  io::write_pod(stream, metricspace::kMaxPayloadBytes + 1);  // length field
  stream << "x";
  try {
    (void)load_index(stream);
    FAIL() << "expected std::runtime_error";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("oversized string length"),
              std::string::npos)
        << "error should mention the oversized length: " << e.what();
  }
}

TEST(CorruptFiles, PayloadStreamWithBadTagsIsRejected) {
  // Unknown metric-space tag: corruption, named in the error.
  {
    std::stringstream stream;
    write_payload_header(stream, "rbc-exact", "no-such-space");
    io::write_string(stream, "strings");
    io::write_pod(stream, std::uint64_t{0});
    try {
      (void)load_index(stream);
      FAIL() << "expected std::runtime_error";
    } catch (const std::runtime_error& e) {
      EXPECT_NE(std::string(e.what()).find("metric-space tag"),
                std::string::npos)
          << "error should mention the metric tag: " << e.what();
    }
  }
  // Unknown host-backend tag.
  {
    std::stringstream stream;
    write_payload_header(stream, "no-such-host", "edit");
    try {
      (void)load_index(stream);
      FAIL() << "expected std::runtime_error";
    } catch (const std::runtime_error& e) {
      EXPECT_NE(std::string(e.what()).find("backend tag"), std::string::npos)
          << "error should mention the backend tag: " << e.what();
    }
  }
  // Unknown dataset kind tag.
  {
    std::stringstream stream;
    write_payload_header(stream, "bruteforce", "edit");
    io::write_string(stream, "blobs");
    EXPECT_THROW((void)load_index(stream), std::runtime_error);
  }
  // A future payload version is rejected, not misparsed.
  {
    std::stringstream stream;
    io::write_pod(stream, io::kMagicPayload);
    io::write_pod(stream, std::uint32_t{7});
    EXPECT_THROW((void)load_index(stream), std::runtime_error);
  }
  // A dataset whose kind disagrees with the header's metric (a "graph"
  // store under "edit") is stream corruption — runtime_error, never the
  // factory's invalid_argument.
  {
    std::stringstream stream;
    write_payload_header(stream, "bruteforce", "edit");
    metricspace::make_graph_dataset(4, {{0, 1, 1.0f}, {1, 2, 1.0f},
                                        {2, 3, 1.0f}})
        ->save(stream);
    try {
      (void)load_index(stream);
      FAIL() << "expected std::runtime_error";
    } catch (const std::runtime_error& e) {
      EXPECT_NE(std::string(e.what()).find("corrupt payload stream"),
                std::string::npos)
          << e.what();
    }
  }
}

TEST(CorruptFiles, FlippedMagicByteIsRejected) {
  const std::string bytes = saved_bytes("rbc-exact");
  ASSERT_FALSE(bytes.empty());
  std::string flipped = bytes;
  flipped[0] = static_cast<char>(flipped[0] ^ 0x5A);
  std::stringstream stream(flipped);
  EXPECT_THROW((void)load_index(stream), std::runtime_error);
}

// ------------------------------------------- atomic on-disk persistence --
// save_index's atomic-replace protocol (api/persist.hpp): `path` only ever
// holds a complete index — the previous good one or the new one — no
// matter where a failed or interrupted save lands.

/// An index whose save() writes a partial stream and then dies — the
/// worst-case serialization failure an atomic saver must contain.
class ExplodingSaveIndex : public Index {
 public:
  void build(const Matrix<float>&) override {}
  SearchResponse knn_search(const SearchRequest&) const override {
    throw std::runtime_error("not a real index");
  }
  IndexInfo info() const override { return {.backend = "exploding"}; }
  void save(std::ostream& os) const override {
    os << "half a file";
    throw std::runtime_error("disk on fire mid-serialize");
  }
};

TEST(CorruptFiles, SaveIndexRoundTripsThroughTheFilesystem) {
  const Matrix<float> X = testutil::clustered_matrix(120, 6, 4, 61);
  const Matrix<float> Q = testutil::random_matrix(5, 6, 62);
  const std::string path = ::testing::TempDir() + "atomic_roundtrip.rbc";
  std::remove(path.c_str());

  auto index = make_index("sharded:rbc-exact",
                          {.rbc = {.seed = 63}, .num_shards = 3});
  index->build(X);
  save_index(*index, path);

  // No intermediate file survives a successful save.
  std::ifstream tmp(path + ".tmp");
  EXPECT_FALSE(tmp.good()) << "stray " << path << ".tmp after save_index";

  const auto restored = load_index_file(path);
  EXPECT_EQ(restored->info().backend, "sharded:rbc-exact");
  EXPECT_TRUE(testutil::knn_equal(
      index->knn_search({.queries = &Q, .k = 4}).knn,
      restored->knn_search({.queries = &Q, .k = 4}).knn));
  std::remove(path.c_str());
}

TEST(CorruptFiles, FailedSavePreservesThePreviousGoodIndex) {
  const Matrix<float> X = testutil::clustered_matrix(90, 5, 3, 64);
  const Matrix<float> Q = testutil::random_matrix(4, 5, 65);
  const std::string path = ::testing::TempDir() + "atomic_failed_save.rbc";
  std::remove(path.c_str());

  auto good = make_index("bruteforce");
  good->build(X);
  save_index(*good, path);
  const KnnResult expected = good->knn_search({.queries = &Q, .k = 3}).knn;

  // A save that explodes mid-serialize must not touch `path` and must not
  // leave a tmp file behind.
  const ExplodingSaveIndex exploding;
  EXPECT_THROW(save_index(exploding, path), std::runtime_error);
  std::ifstream tmp(path + ".tmp");
  EXPECT_FALSE(tmp.good()) << "stray tmp file after failed save";

  const auto survivor = load_index_file(path);
  EXPECT_TRUE(testutil::knn_equal(
      expected, survivor->knn_search({.queries = &Q, .k = 3}).knn));
  std::remove(path.c_str());
}

TEST(CorruptFiles, InterruptedWriteFixtureLeavesOldIndexLoadable) {
  // The crash save_index exists to survive: power dies after the tmp file
  // was partially written but before the rename. On restart, `path` must
  // still hold the complete previous index, and the next save must succeed
  // over the stale tmp.
  const Matrix<float> X = testutil::clustered_matrix(80, 4, 3, 66);
  const Matrix<float> Q = testutil::random_matrix(4, 4, 67);
  const std::string path = ::testing::TempDir() + "atomic_interrupted.rbc";
  std::remove(path.c_str());

  auto index = make_index("rbc-exact", {.rbc = {.seed = 68}});
  index->build(X);
  save_index(*index, path);

  // Forge the crash artifact: a truncated tmp exactly as an interrupted
  // writer would leave it.
  {
    std::stringstream full;
    index->save(full);
    std::ofstream stale(path + ".tmp", std::ios::binary);
    stale << full.str().substr(0, full.str().size() / 2);
  }

  // The published path is untouched by the dead tmp…
  const auto survivor = load_index_file(path);
  EXPECT_TRUE(testutil::knn_equal(
      index->knn_search({.queries = &Q, .k = 3}).knn,
      survivor->knn_search({.queries = &Q, .k = 3}).knn));
  // …the stale tmp itself is the torn file load_index rejects…
  EXPECT_THROW((void)load_index_file(path + ".tmp"), std::runtime_error);
  // …and the next save replaces both cleanly.
  save_index(*index, path);
  std::ifstream tmp(path + ".tmp");
  EXPECT_FALSE(tmp.good()) << "stale tmp not cleaned by the next save";
  EXPECT_NO_THROW((void)load_index_file(path));
  std::remove(path.c_str());
}

TEST(CorruptFiles, LoadIndexFileReportsAMissingPath) {
  const std::string path = ::testing::TempDir() + "no_such_index.rbc";
  std::remove(path.c_str());
  try {
    (void)load_index_file(path);
    FAIL() << "expected std::runtime_error";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find(path), std::string::npos)
        << "error should name the path: " << e.what();
  }
}

}  // namespace
}  // namespace rbc
