#include <gtest/gtest.h>

#include "common/counters.hpp"
#include "distance/pairwise.hpp"
#include "test_util.hpp"

namespace rbc {
namespace {

TEST(Pairwise, AllPairsMatchDirectEvaluation) {
  const Matrix<float> A = testutil::random_matrix(37, 21, 1);
  const Matrix<float> B = testutil::random_matrix(53, 21, 2);
  const Matrix<float> D = pairwise_all(A, B, Euclidean{});
  ASSERT_EQ(D.rows(), A.rows());
  ASSERT_EQ(D.cols(), B.rows());
  const Euclidean m{};
  for (index_t i = 0; i < A.rows(); ++i)
    for (index_t j = 0; j < B.rows(); ++j)
      EXPECT_EQ(D.at(i, j), m(A.row(i), B.row(j), 21)) << i << "," << j;
}

TEST(Pairwise, TileBoundariesSeamless) {
  // Sizes straddle the tile constants (kTileQ=16, kTileX=256).
  const Matrix<float> A = testutil::random_matrix(kTileQ * 2 + 3, 8, 3);
  const Matrix<float> B = testutil::random_matrix(kTileX + 17, 8, 4);
  const Matrix<float> D = pairwise_all(A, B, L1{});
  const L1 m{};
  for (index_t i = 0; i < A.rows(); ++i)
    for (index_t j = 0; j < B.rows(); ++j)
      EXPECT_EQ(D.at(i, j), m(A.row(i), B.row(j), 8));
}

TEST(Pairwise, CountsDistanceEvaluations) {
  const Matrix<float> A = testutil::random_matrix(10, 5, 5);
  const Matrix<float> B = testutil::random_matrix(20, 5, 6);
  counters::Scope scope;
  pairwise_all(A, B, Euclidean{});
  EXPECT_EQ(scope.delta(), 200u);
}

TEST(Pairwise, SingleTileDirectCall) {
  const Matrix<float> A = testutil::random_matrix(4, 13, 7);
  const Matrix<float> B = testutil::random_matrix(6, 13, 8);
  Matrix<float> out(2, 3);
  pairwise_tile(A, 1, 3, B, 2, 5, Euclidean{}, out.row(0), out.stride());
  const Euclidean m{};
  for (index_t i = 0; i < 2; ++i)
    for (index_t j = 0; j < 3; ++j)
      EXPECT_EQ(out.at(i, j), m(A.row(1 + i), B.row(2 + j), 13));
}

TEST(Pairwise, SelfDistancesZeroDiagonal) {
  const Matrix<float> A = testutil::random_matrix(25, 10, 9);
  const Matrix<float> D = pairwise_l2(A, A);
  for (index_t i = 0; i < A.rows(); ++i) EXPECT_EQ(D.at(i, i), 0.0f);
}

}  // namespace
}  // namespace rbc
