#include <gtest/gtest.h>

#include <cmath>

#include "data/expansion_rate.hpp"
#include "data/generators.hpp"
#include "test_util.hpp"

namespace rbc::data {
namespace {

TEST(ExpansionRate, GridUnderL1MatchesPaperExample) {
  // Paper §6: "consider a grid of points in R^d under the l1 metric. The
  // expansion rate in this case is 2^d." Finite-grid boundary effects pull
  // the observed ratio below 2^d, so assert a generous bracket around it.
  for (const index_t d : {1u, 2u, 3u}) {
    const index_t side = d == 1 ? 1024 : (d == 2 ? 48 : 14);
    const Matrix<float> grid = make_grid(side, d);
    const ExpansionEstimate est = estimate_expansion_rate_l1(grid, 30, 1);
    const double expected = std::pow(2.0, d);
    EXPECT_GT(est.c_q90, 0.5 * expected) << "d=" << d;
    EXPECT_LT(est.c_q90, 2.0 * expected) << "d=" << d;
  }
}

TEST(ExpansionRate, IntrinsicDimTracksGridDimension) {
  const Matrix<float> g1 = make_grid(1024, 1);
  const Matrix<float> g2 = make_grid(48, 2);
  const Matrix<float> g3 = make_grid(14, 3);
  const double d1 = estimate_expansion_rate_l1(g1, 30, 2).intrinsic_dim();
  const double d2 = estimate_expansion_rate_l1(g2, 30, 2).intrinsic_dim();
  const double d3 = estimate_expansion_rate_l1(g3, 30, 2).intrinsic_dim();
  EXPECT_LT(d1, d2);
  EXPECT_LT(d2, d3);
}

TEST(ExpansionRate, LowDimManifoldInHighAmbientHasSmallC) {
  // Swiss roll: intrinsic dimension 2 regardless of the ambient 20 dims.
  const Matrix<float> roll = make_swiss_roll(4'000, 20, 0.05f, 3);
  const ExpansionEstimate est = estimate_expansion_rate(roll, 25, 4);
  EXPECT_LT(est.intrinsic_dim(), 5.0)
      << "swiss roll should have intrinsic dim near 2, got c_q90="
      << est.c_q90;
}

TEST(ExpansionRate, UniformCubeGrowsWithDimension) {
  const Matrix<float> low = make_uniform_cube(4'000, 2, 5);
  const Matrix<float> high = make_uniform_cube(4'000, 10, 6);
  const double c_low = estimate_expansion_rate(low, 25, 7).c_q90;
  const double c_high = estimate_expansion_rate(high, 25, 8).c_q90;
  EXPECT_LT(c_low, c_high);
}

TEST(ExpansionRate, SubspaceClustersReflectIntrinsicNotAmbient) {
  // Same ambient d=50; intrinsic 3 vs 20 must be clearly separated.
  const Matrix<float> narrow = make_subspace_clusters(4'000, 50, 5, 3, 0.01f, 9);
  const Matrix<float> wide = make_subspace_clusters(4'000, 50, 5, 20, 0.01f, 10);
  const double c_narrow = estimate_expansion_rate(narrow, 25, 11).c_q90;
  const double c_wide = estimate_expansion_rate(wide, 25, 12).c_q90;
  EXPECT_LT(c_narrow, c_wide);
}

TEST(ExpansionRate, EdgeCases) {
  const Matrix<float> empty(0, 3);
  EXPECT_EQ(estimate_expansion_rate(empty, 5, 1).c_max, 0.0);

  const Matrix<float> tiny = rbc::testutil::random_matrix(4, 3, 2);
  // min_ball=8 > n/2: no radii to evaluate -> empty estimate, not a crash.
  const ExpansionEstimate est = estimate_expansion_rate(tiny, 2, 3);
  EXPECT_EQ(est.c_max, 0.0);
}

TEST(ExpansionRate, DuplicateHeavyDataDoesNotDivideByZero) {
  Matrix<float> base = rbc::testutil::random_matrix(20, 4, 4);
  const Matrix<float> X = rbc::testutil::with_duplicates(base, 400);
  const ExpansionEstimate est = estimate_expansion_rate(X, 10, 5);
  EXPECT_TRUE(std::isfinite(est.c_max));
}

}  // namespace
}  // namespace rbc::data
