#include "fault_proxy.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <stdexcept>

#include "common/rng.hpp"

namespace rbc::testing {

namespace {

/// Abort-close: SO_LINGER{1, 0} makes close() send RST instead of FIN —
/// the byte-level signature of a crashed peer.
void rst_close(int fd) {
  const linger abort_on_close{1, 0};
  setsockopt(fd, SOL_SOCKET, SO_LINGER, &abort_on_close,
             sizeof abort_on_close);
  close(fd);
}

int connect_loopback(const std::string& host, std::uint16_t port) {
  const int fd = socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) return -1;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  inet_pton(AF_INET, host.c_str(), &addr.sin_addr);
  if (connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) < 0) {
    close(fd);
    return -1;
  }
  const int one = 1;
  setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
  return fd;
}

}  // namespace

/// One proxied connection: two pump threads share it via shared_ptr so the
/// proxy can shut it down from any thread without racing the pumps.
struct FaultProxy::Conn {
  int client_fd = -1;
  int upstream_fd = -1;
  std::uint64_t index = 0;            ///< accept order, drives the schedule
  std::atomic<std::uint64_t> forwarded{0};  ///< upstream->client bytes sent
  std::atomic<bool> dead{false};
  std::thread up;    // client -> upstream
  std::thread down;  // upstream -> client

  /// Idempotent teardown; `rst` aborts the client side (partition/crash
  /// semantics) instead of a clean FIN.
  void kill(bool rst) {
    if (dead.exchange(true)) return;
    shutdown(upstream_fd, SHUT_RDWR);
    if (rst) {
      const linger abort_on_close{1, 0};
      setsockopt(client_fd, SOL_SOCKET, SO_LINGER, &abort_on_close,
                 sizeof abort_on_close);
    }
    shutdown(client_fd, SHUT_RDWR);
  }
};

FaultProxy::FaultProxy(std::string upstream_host, std::uint16_t upstream_port)
    : upstream_host_(std::move(upstream_host)),
      upstream_port_(upstream_port) {
  listen_fd_ = socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (listen_fd_ < 0)
    throw std::runtime_error("FaultProxy: socket() failed");
  const int one = 1;
  setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = 0;  // OS-assigned, stable for the proxy's lifetime
  inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  if (bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof addr) < 0 ||
      listen(listen_fd_, 64) < 0) {
    close(listen_fd_);
    throw std::runtime_error("FaultProxy: bind/listen failed");
  }
  socklen_t len = sizeof addr;
  getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len);
  port_ = ntohs(addr.sin_port);
  accept_thread_ = std::thread([this] { accept_loop(); });
}

FaultProxy::~FaultProxy() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stopping_ = true;
  }
  shutdown(listen_fd_, SHUT_RDWR);  // wakes the pending accept
  accept_thread_.join();
  close(listen_fd_);

  std::vector<std::shared_ptr<Conn>> conns;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    conns.swap(conns_);
  }
  for (const auto& conn : conns) conn->kill(/*rst=*/true);
  for (const auto& conn : conns) {
    if (conn->up.joinable()) conn->up.join();
    if (conn->down.joinable()) conn->down.join();
    close(conn->client_fd);
    close(conn->upstream_fd);
  }
}

void FaultProxy::set_plan(FaultPlan plan) {
  std::lock_guard<std::mutex> lock(mutex_);
  plan_ = plan;
  scheduled_ = false;
}

void FaultProxy::set_schedule(std::vector<FaultPlan> menu,
                              std::uint64_t seed) {
  if (menu.empty()) throw std::invalid_argument("FaultProxy: empty schedule");
  std::lock_guard<std::mutex> lock(mutex_);
  schedule_ = std::move(menu);
  schedule_seed_ = seed;
  scheduled_ = true;
}

void FaultProxy::set_upstream(std::uint16_t upstream_port) {
  std::lock_guard<std::mutex> lock(mutex_);
  upstream_port_ = upstream_port;
}

void FaultProxy::drop_connections() {
  std::vector<std::shared_ptr<Conn>> conns;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    conns = conns_;
  }
  for (const auto& conn : conns) conn->kill(/*rst=*/true);
}

std::uint64_t FaultProxy::connections_accepted() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return accepted_;
}

std::uint64_t FaultProxy::faults_injected() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return faults_;
}

FaultPlan FaultProxy::plan_for(const Conn& conn) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (!scheduled_) return plan_;
  std::uint64_t state = schedule_seed_ ^ conn.index;
  return schedule_[splitmix64(state) % schedule_.size()];
}

void FaultProxy::accept_loop() {
  for (;;) {
    const int client_fd = accept(listen_fd_, nullptr, nullptr);
    {
      std::lock_guard<std::mutex> lock(mutex_);
      if (stopping_) {
        if (client_fd >= 0) close(client_fd);
        return;
      }
    }
    if (client_fd < 0) {
      if (errno == EINTR || errno == ECONNABORTED) continue;
      return;  // listener gone
    }
    start_conn(client_fd);
  }
}

void FaultProxy::start_conn(int client_fd) {
  const int one = 1;
  setsockopt(client_fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);

  auto conn = std::make_shared<Conn>();
  conn->client_fd = client_fd;
  std::string host;
  std::uint16_t port = 0;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    conn->index = accepted_++;
    host = upstream_host_;
    port = upstream_port_;
  }
  conn->upstream_fd = connect_loopback(host, port);
  if (conn->upstream_fd < 0) {
    // Upstream down: the client sees what it would have seen talking to the
    // dead server directly — an abortive close.
    rst_close(client_fd);
    return;
  }

  conn->up = std::thread([this, conn] { pump_client_to_upstream(conn); });
  conn->down = std::thread([this, conn] { pump_upstream_to_client(conn); });
  std::lock_guard<std::mutex> lock(mutex_);
  conns_.push_back(conn);
}

void FaultProxy::pump_client_to_upstream(const std::shared_ptr<Conn>& conn) {
  std::uint8_t chunk[16 * 1024];
  for (;;) {
    const ssize_t n = recv(conn->client_fd, chunk, sizeof chunk, 0);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      conn->kill(/*rst=*/false);
      return;
    }
    if (plan_for(*conn).mode == FaultPlan::Mode::kBlackhole) continue;
    std::size_t off = 0;
    while (off < static_cast<std::size_t>(n)) {
      const ssize_t w = send(conn->upstream_fd, chunk + off, n - off,
                             MSG_NOSIGNAL);
      if (w <= 0) {
        if (w < 0 && errno == EINTR) continue;
        conn->kill(/*rst=*/false);
        return;
      }
      off += static_cast<std::size_t>(w);
    }
  }
}

void FaultProxy::pump_upstream_to_client(const std::shared_ptr<Conn>& conn) {
  std::uint8_t chunk[16 * 1024];
  const auto forward = [&](const std::uint8_t* data, std::size_t len) {
    std::size_t off = 0;
    while (off < len) {
      const ssize_t w =
          send(conn->client_fd, data + off, len - off, MSG_NOSIGNAL);
      if (w <= 0) {
        if (w < 0 && errno == EINTR) continue;
        return false;
      }
      off += static_cast<std::size_t>(w);
    }
    conn->forwarded += len;
    return true;
  };
  const auto count_fault = [&] {
    std::lock_guard<std::mutex> lock(mutex_);
    faults_ += 1;
  };

  for (;;) {
    const ssize_t n = recv(conn->upstream_fd, chunk, sizeof chunk, 0);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) continue;
      conn->kill(/*rst=*/false);
      return;
    }
    const auto len = static_cast<std::size_t>(n);
    const FaultPlan plan = plan_for(*conn);
    const std::uint64_t done = conn->forwarded.load();
    switch (plan.mode) {
      case FaultPlan::Mode::kNone:
        if (!forward(chunk, len)) return conn->kill(false);
        break;
      case FaultPlan::Mode::kDelay:
        std::this_thread::sleep_for(
            std::chrono::milliseconds(plan.delay_ms));
        if (!forward(chunk, len)) return conn->kill(false);
        break;
      case FaultPlan::Mode::kBlackhole:
        count_fault();
        break;  // swallow; connection stays open and silent
      case FaultPlan::Mode::kReset: {
        // Forward exactly up to the trigger offset, then RST mid-frame.
        const std::uint64_t keep =
            plan.after_bytes > done
                ? std::min<std::uint64_t>(plan.after_bytes - done, len)
                : 0;
        if (keep > 0 && !forward(chunk, keep)) return conn->kill(false);
        if (keep < len) {
          count_fault();
          return conn->kill(/*rst=*/true);
        }
        break;
      }
      case FaultPlan::Mode::kTruncate: {
        const std::uint64_t keep =
            plan.after_bytes > done
                ? std::min<std::uint64_t>(plan.after_bytes - done, len)
                : 0;
        if (keep > 0 && !forward(chunk, keep)) return conn->kill(false);
        if (keep < len) {
          count_fault();
          return conn->kill(/*rst=*/false);  // clean FIN, frame cut short
        }
        break;
      }
      case FaultPlan::Mode::kCorrupt: {
        // Flip the byte at stream offset after_bytes, pass the rest.
        if (plan.after_bytes >= done && plan.after_bytes < done + len) {
          chunk[plan.after_bytes - done] ^= 0xFF;
          count_fault();
        }
        if (!forward(chunk, len)) return conn->kill(false);
        break;
      }
    }
  }
}

}  // namespace rbc::testing
