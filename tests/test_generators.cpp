#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>

#include "data/generators.hpp"

namespace rbc::data {
namespace {

bool all_finite(const Matrix<float>& m) {
  for (index_t i = 0; i < m.rows(); ++i)
    for (index_t j = 0; j < m.cols(); ++j)
      if (!std::isfinite(m.at(i, j))) return false;
  return true;
}

bool matrices_equal(const Matrix<float>& a, const Matrix<float>& b) {
  if (a.rows() != b.rows() || a.cols() != b.cols()) return false;
  for (index_t i = 0; i < a.rows(); ++i)
    for (index_t j = 0; j < a.cols(); ++j)
      if (a.at(i, j) != b.at(i, j)) return false;
  return true;
}

TEST(Generators, UniformCubeShapeAndRange) {
  const Matrix<float> X = make_uniform_cube(1'000, 7, 1);
  EXPECT_EQ(X.rows(), 1'000u);
  EXPECT_EQ(X.cols(), 7u);
  for (index_t i = 0; i < X.rows(); ++i)
    for (index_t j = 0; j < X.cols(); ++j) {
      EXPECT_GE(X.at(i, j), 0.0f);
      EXPECT_LT(X.at(i, j), 1.0f);
    }
}

TEST(Generators, DeterministicInSeed) {
  EXPECT_TRUE(matrices_equal(make_uniform_cube(200, 5, 9),
                             make_uniform_cube(200, 5, 9)));
  EXPECT_TRUE(matrices_equal(make_robot_arm(300, 4), make_robot_arm(300, 4)));
  EXPECT_TRUE(matrices_equal(make_subspace_clusters(200, 20, 5, 3, 0.1f, 2),
                             make_subspace_clusters(200, 20, 5, 3, 0.1f, 2)));
  EXPECT_FALSE(matrices_equal(make_uniform_cube(200, 5, 9),
                              make_uniform_cube(200, 5, 10)));
}

TEST(Generators, SubspaceClustersRejectsBadIntrinsicDim) {
  EXPECT_THROW(make_subspace_clusters(10, 4, 2, 8, 0.1f, 1),
               std::invalid_argument);
}

TEST(Generators, GridHasExpectedSizeAndSpacing) {
  const Matrix<float> g = make_grid(5, 3);
  EXPECT_EQ(g.rows(), 125u);
  EXPECT_EQ(g.cols(), 3u);
  // First point is the origin; second differs by 1 in dim 0.
  EXPECT_EQ(g.at(0, 0), 0.0f);
  EXPECT_EQ(g.at(1, 0), 1.0f);
  EXPECT_EQ(g.at(1, 1), 0.0f);
  // Last point is the far corner.
  EXPECT_EQ(g.at(124, 0), 4.0f);
  EXPECT_EQ(g.at(124, 2), 4.0f);
}

TEST(Generators, RobotArmHas21DimsAndSmoothTrajectories) {
  const Matrix<float> X = make_robot_arm(1'000, 3, /*points_per_traj=*/100);
  EXPECT_EQ(X.cols(), 21u);
  ASSERT_TRUE(all_finite(X));
  // Consecutive samples on the same trajectory are close in joint space
  // (velocity bounded by sum of amp*omega < 3*1.2*2.5 = 9 rad/s, dt=0.02).
  for (index_t i = 1; i < 100; ++i) {
    for (index_t j = 0; j < 7; ++j) {
      const float dq = std::fabs(X.at(i, j) - X.at(i - 1, j));
      EXPECT_LT(dq, 0.5f) << "joint jump at sample " << i;
    }
  }
}

TEST(Generators, RobotArmVelocityConsistentWithFiniteDifference) {
  const Matrix<float> X = make_robot_arm(200, 5, /*points_per_traj=*/200);
  const float dt = 0.02f;
  // Central difference of q should approximate the stored qdot.
  for (index_t i = 1; i + 1 < 200; i += 17) {
    for (index_t j = 0; j < 7; ++j) {
      const float fd = (X.at(i + 1, j) - X.at(i - 1, j)) / (2 * dt);
      const float stored = X.at(i, 7 + j);
      EXPECT_NEAR(fd, stored, 0.05f * std::max(1.0f, std::fabs(stored)));
    }
  }
}

TEST(Generators, ImageDescriptorsShape) {
  for (const index_t d : {4u, 8u, 16u, 32u}) {
    const Matrix<float> X = make_image_descriptors(500, d, 6);
    EXPECT_EQ(X.rows(), 500u);
    EXPECT_EQ(X.cols(), d);
    EXPECT_TRUE(all_finite(X));
  }
}

TEST(Generators, SwissRollLiesOnCylinderEnvelope) {
  const Matrix<float> X = make_swiss_roll(500, 5, 0.0f, 7);
  // Noise-free swiss roll: radius in the (x, z) plane equals the angle t,
  // which lives in [1.5pi, 4.5pi].
  for (index_t i = 0; i < X.rows(); ++i) {
    const float r = std::hypot(X.at(i, 0), X.at(i, 2));
    EXPECT_GE(r, 4.5f);
    EXPECT_LE(r, 14.2f);
    for (index_t j = 3; j < 5; ++j) EXPECT_EQ(X.at(i, j), 0.0f);
  }
}

TEST(PaperDatasets, TableOneShapes) {
  const auto& specs = paper_datasets();
  ASSERT_EQ(specs.size(), 8u);
  EXPECT_EQ(dataset_by_name("bio").dim, 74u);
  EXPECT_EQ(dataset_by_name("cov").dim, 54u);
  EXPECT_EQ(dataset_by_name("phy").dim, 78u);
  EXPECT_EQ(dataset_by_name("robot").dim, 21u);
  EXPECT_EQ(dataset_by_name("tiny4").dim, 4u);
  EXPECT_EQ(dataset_by_name("tiny32").dim, 32u);
  EXPECT_EQ(dataset_by_name("bio").paper_n, 200'000u);
  EXPECT_EQ(dataset_by_name("robot").paper_n, 2'000'000u);
  EXPECT_THROW(dataset_by_name("nonexistent"), std::invalid_argument);
}

TEST(PaperDatasets, EverySurrogateGenerates) {
  for (const auto& spec : paper_datasets()) {
    const Matrix<float> X = make_dataset(spec, 300, 11);
    EXPECT_EQ(X.rows(), 300u) << spec.name;
    EXPECT_EQ(X.cols(), spec.dim) << spec.name;
    EXPECT_TRUE(all_finite(X)) << spec.name;
  }
}

TEST(PaperDatasets, BenchmarkSplitSizes) {
  const DataSplit split = make_benchmark_data(dataset_by_name("bio"), 400, 50, 13);
  EXPECT_EQ(split.database.rows(), 400u);
  EXPECT_EQ(split.queries.rows(), 50u);
  EXPECT_EQ(split.database.cols(), 74u);
  EXPECT_EQ(split.queries.cols(), 74u);
}

}  // namespace
}  // namespace rbc::data
